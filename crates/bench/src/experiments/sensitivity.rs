//! Sensitivity studies: DRAM bandwidth (Fig. 12a) and LLC size
//! (Fig. 12b).

use crate::prefetchers::PrefetcherKind;
use crate::runner::{normalized_ipcs, run_specs_grid, RunConfig};
use pmp_sim::SystemConfig;
use pmp_stats::report::{render_series, Series};
use pmp_traces::{representative_subset, TraceScale};

/// Baseline + paper-five over `specs` as one scheduler grid for one
/// system-config point; returns (baseline outcomes, per-kind outcomes
/// in `paper_five` order).
fn point_grids(
    specs: &[pmp_traces::TraceSpec],
    cfg: &RunConfig,
) -> (Vec<crate::runner::RunOutcome>, Vec<Vec<crate::runner::RunOutcome>>) {
    let mut kinds = vec![PrefetcherKind::None];
    kinds.extend(PrefetcherKind::paper_five());
    let mut grids = run_specs_grid(specs, &kinds, cfg).into_iter();
    let base = grids.next().expect("baseline grid present");
    (base, grids.collect())
}

/// **Fig. 12a** — five prefetchers under 800/1600/3200/6400 MT/s.
///
/// Expected shape: PMP's aggressive traffic makes it bandwidth-hungry —
/// it trails at 800 MT/s (except vs DSPatch) and leads from 1600 MT/s
/// up, saturating near 3200 MT/s.
pub fn fig12a_bandwidth(scale: TraceScale) -> String {
    let specs = representative_subset();
    let mut series: Vec<Series> =
        PrefetcherKind::paper_five().iter().map(|k| Series::new(&k.label())).collect();
    for mts in [800u64, 1600, 3200, 6400] {
        let cfg = RunConfig {
            scale,
            system: SystemConfig::single_core().with_dram_mts(mts),
            ..RunConfig::default()
        };
        let (base, withs) = point_grids(&specs, &cfg);
        for (si, with) in withs.iter().enumerate() {
            let (_, g) = normalized_ipcs(&base, with);
            series[si].push(format!("{mts} MT/s"), g);
        }
    }
    format!(
        "Fig. 12a: NIPC vs DRAM bandwidth\n(paper: PMP trails slightly at 800 MT/s, leads at ≥1600, near peak by 3200)\n\n{}",
        render_series("bandwidth", &series)
    )
}

/// **Fig. 12b** — five prefetchers under 2/4/8 MB LLCs.
///
/// Expected shape: PMP's lead over Bingo widens with LLC size (useless
/// prefetches pollute less).
pub fn fig12b_llc(scale: TraceScale) -> String {
    let specs = representative_subset();
    let mut series: Vec<Series> =
        PrefetcherKind::paper_five().iter().map(|k| Series::new(&k.label())).collect();
    for mb in [2usize, 4, 8] {
        let cfg = RunConfig {
            scale,
            system: SystemConfig::single_core().with_llc_mb(mb),
            ..RunConfig::default()
        };
        let (base, withs) = point_grids(&specs, &cfg);
        for (si, with) in withs.iter().enumerate() {
            let (_, g) = normalized_ipcs(&base, with);
            series[si].push(format!("{mb}MB"), g);
        }
    }
    format!(
        "Fig. 12b: NIPC vs LLC size\n(paper: PMP leads at every size; the PMP-Bingo gap grows with the LLC)\n\n{}",
        render_series("LLC", &series)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12b_tiny() {
        let s = fig12b_llc(TraceScale::Tiny);
        assert!(s.contains("2MB"));
        assert!(s.contains("8MB"));
        assert!(s.contains("pmp"));
    }
}
