//! Design-analysis experiments (paper Section V-E): Design B
//! (Table VIII), extraction schemes, multi-feature prediction,
//! pattern length (Table IX), trigger-offset width and counter size
//! (Table X), monitoring range (Table XI).

use crate::prefetchers::PrefetcherKind;
use crate::runner::{normalized_ipcs, run_specs_grid, RunConfig};
use pmp_core::{ExtractionScheme, PmpConfig};
use pmp_core::pmp::TableMode;
use pmp_stats::Table;
use pmp_traces::{representative_subset, TraceScale, TraceSpec};

fn sweep_config() -> Vec<TraceSpec> {
    representative_subset()
}

/// One scheduler product over `[baseline] + kinds`: the baseline
/// outcomes first, then one outcome set per requested kind.
fn baseline_and(
    specs: &[TraceSpec],
    kinds: Vec<PrefetcherKind>,
    cfg: &RunConfig,
) -> (Vec<crate::runner::RunOutcome>, Vec<Vec<crate::runner::RunOutcome>>) {
    let mut all = vec![PrefetcherKind::None];
    all.extend(kinds);
    let mut grids = run_specs_grid(specs, &all, cfg).into_iter();
    let base = grids.next().expect("baseline grid present");
    (base, grids.collect())
}

fn geomean_nipc(specs: &[TraceSpec], kind: &PrefetcherKind, cfg: &RunConfig) -> f64 {
    let (base, mut withs) = baseline_and(specs, vec![kind.clone()], cfg);
    let with = withs.pop().expect("one kind requested");
    normalized_ipcs(&base, &with).1
}

/// Run several PMP variants against one shared baseline — the whole
/// `(1 + variants) × specs` product as one scheduler grid.
fn pmp_variants(
    specs: &[TraceSpec],
    cfg: &RunConfig,
    variants: &[(String, PmpConfig)],
) -> Vec<(String, f64)> {
    let kinds: Vec<PrefetcherKind> = variants
        .iter()
        .map(|(_, c)| PrefetcherKind::PmpCustom(Box::new(c.clone())))
        .collect();
    let (base, withs) = baseline_and(specs, kinds, cfg);
    variants
        .iter()
        .zip(withs)
        .map(|((label, _), with)| (label.clone(), normalized_ipcs(&base, &with).1))
        .collect()
}

/// **Table VIII** — Design B NIPC versus associativity, plus PMP for
/// reference. The paper's point: even 512 ways of identical-pattern
/// counting lose to counter-vector merging.
pub fn tab8_design_b(scale: TraceScale) -> String {
    let specs = sweep_config();
    let cfg = RunConfig { scale, ..RunConfig::default() };
    let mut kinds: Vec<PrefetcherKind> =
        [8usize, 32, 128, 512].iter().map(|&w| PrefetcherKind::DesignB(w)).collect();
    kinds.push(PrefetcherKind::Pmp);
    let (base, withs) = baseline_and(&specs, kinds.clone(), &cfg);
    let mut t = Table::new(&["design", "ways", "NIPC", "storage KiB"]);
    for (kind, with) in kinds.iter().zip(withs) {
        let (_, g) = normalized_ipcs(&base, &with);
        let kib = kind.build().storage_bits() as f64 / 8.0 / 1024.0;
        let (design, ways) = match kind {
            PrefetcherKind::DesignB(w) => ("Design B".to_string(), w.to_string()),
            _ => ("PMP".to_string(), "-".to_string()),
        };
        t.row_owned(vec![design, ways, super::f3(g), format!("{kib:.1}")]);
    }
    format!(
        "Table VIII: Design B (identical-pattern counting) vs associativity\n(paper: NIPC grows with ways — 1.176/1.188/1.215/1.224 — but PMP beats 512-way by 34.9%)\n\n{}",
        t.render()
    )
}

/// **Section V-E2** — the three extraction schemes. Paper: AFE 65.2%
/// over baseline, ANE 60.3%, ARE only 5.0% (depth-capped).
pub fn ext_schemes(scale: TraceScale) -> String {
    let specs = sweep_config();
    let cfg = RunConfig { scale, ..RunConfig::default() };
    let variants = vec![
        (
            "AFE (default)".to_string(),
            PmpConfig { scheme: ExtractionScheme::default(), ..PmpConfig::default() },
        ),
        (
            "ANE (16/5)".to_string(),
            PmpConfig { scheme: ExtractionScheme::ane_default(), ..PmpConfig::default() },
        ),
        (
            "ARE (50%/15%)".to_string(),
            PmpConfig { scheme: ExtractionScheme::are_default(), ..PmpConfig::default() },
        ),
    ];
    let results = pmp_variants(&specs, &cfg, &variants);
    let mut t = Table::new(&["scheme", "NIPC"]);
    for (label, g) in results {
        t.row_owned(vec![label, super::f3(g)]);
    }
    format!(
        "Section V-E2: prefetch pattern extraction schemes\n(paper: AFE > ANE (−2.9%) ≫ ARE, which starves stream patterns)\n\n{}",
        t.render()
    )
}

/// **Section V-E3** — multi-feature prediction: the dual pattern
/// tables vs the combined PC+TriggerOffset feature vs single tables.
pub fn mfp_ablation(scale: TraceScale) -> String {
    let specs = sweep_config();
    let cfg = RunConfig { scale, ..RunConfig::default() };
    let variants = vec![
        ("dual tables (OPT+PPT)".to_string(), PmpConfig::default()),
        (
            "combined PC+TriggerOffset (2048 entries)".to_string(),
            PmpConfig { table_mode: TableMode::Combined, ..PmpConfig::default() },
        ),
        (
            "single OPT".to_string(),
            PmpConfig { table_mode: TableMode::OptOnly, ..PmpConfig::default() },
        ),
        (
            "single PPT (OPT-sized)".to_string(),
            PmpConfig { table_mode: TableMode::PptOnly, ..PmpConfig::default() },
        ),
    ];
    let results = pmp_variants(&specs, &cfg, &variants);
    let mut t = Table::new(&["configuration", "NIPC"]);
    for (label, g) in results {
        t.row_owned(vec![label, super::f3(g)]);
    }
    format!(
        "Section V-E3: multi-feature-based prediction ablation\n(paper: dual tables win; combined −3.1%, single OPT −2.4%, single PPT −3.5%)\n\n{}",
        t.render()
    )
}

/// **Table IX** — pattern length 64/32/16 (region 4KB/2KB/1KB) with
/// storage budgets.
pub fn tab9_pattern_len(scale: TraceScale) -> String {
    let specs = sweep_config();
    let cfg = RunConfig { scale, ..RunConfig::default() };
    let variants: Vec<(String, PmpConfig)> = [64u32, 32, 16]
        .iter()
        .map(|&len| (format!("PMP-{len}"), PmpConfig::with_pattern_length(len)))
        .collect();
    let results = pmp_variants(&specs, &cfg, &variants);
    let mut t = Table::new(&["config", "region", "overhead KiB", "NIPC"]);
    for ((label, g), len) in results.into_iter().zip([64u32, 32, 16]) {
        let kib = PrefetcherKind::PmpCustom(Box::new(PmpConfig::with_pattern_length(len)))
            .build()
            .storage_bits() as f64
            / 8.0
            / 1024.0;
        t.row_owned(vec![
            label,
            format!("{}KB", len * 64 / 1024),
            format!("{kib:.1}"),
            super::f3(g),
        ]);
    }
    format!(
        "Table IX: PMP under different pattern lengths\n(paper: 1.652 / 1.626 / 1.572 at 4.3 / 2.5 / 1.6 KB — shorter patterns fold and lose accuracy)\n\n{}",
        t.render()
    )
}

/// **Table X** — trigger-offset width (6..=12 bits) and OPT counter
/// size (2..=8 bits) sweeps.
pub fn tab10_width_counter(scale: TraceScale) -> String {
    let specs = sweep_config();
    let cfg = RunConfig { scale, ..RunConfig::default() };
    let width_variants: Vec<(String, PmpConfig)> = (6u32..=12)
        .map(|b| {
            (format!("{b}-bit trigger offset"), PmpConfig { trigger_offset_bits: b, ..PmpConfig::default() })
        })
        .collect();
    let counter_variants: Vec<(String, PmpConfig)> = (2u32..=8)
        .map(|b| (format!("{b}-bit counters"), PmpConfig { opt_counter_bits: b, ..PmpConfig::default() }))
        .collect();
    let widths = pmp_variants(&specs, &cfg, &width_variants);
    let counters = pmp_variants(&specs, &cfg, &counter_variants);
    let mut t = Table::new(&["trigger offset width", "NIPC", "counter size", "NIPC "]);
    for i in 0..7 {
        t.row_owned(vec![
            width_variants[i].0.clone(),
            super::f3(widths[i].1),
            counter_variants[i].0.clone(),
            super::f3(counters[i].1),
        ]);
    }
    format!(
        "Table X: trigger-offset width and counter size\n(paper: both rise then saturate; 12-bit offsets cost 64x storage for +0.4% NIPC)\n\n{}",
        t.render()
    )
}

/// **Table XI** — monitoring range 1/2/4/8.
pub fn tab11_monitor_range(scale: TraceScale) -> String {
    let specs = sweep_config();
    let cfg = RunConfig { scale, ..RunConfig::default() };
    let variants: Vec<(String, PmpConfig)> = [1u32, 2, 4, 8]
        .iter()
        .map(|&r| {
            (format!("range {r}"), PmpConfig { monitoring_range: r, ..PmpConfig::default() })
        })
        .collect();
    let results = pmp_variants(&specs, &cfg, &variants);
    let mut t = Table::new(&["monitoring range", "NIPC", "PPT bytes"]);
    for ((label, g), r) in results.into_iter().zip([1u32, 2, 4, 8]) {
        let ppt_bytes = pmp_core::tables::PcPatternTable::new(5, 64, r, 5).storage_bits() / 8;
        t.row_owned(vec![label, super::f3(g), ppt_bytes.to_string()]);
    }
    format!(
        "Table XI: PPT monitoring range\n(paper: 1.650 / 1.652 / 1.630 / 1.615 — range 2 is the knee)\n\n{}",
        t.render()
    )
}

/// **Extension study** (not in the paper — its future work): stock PMP
/// vs PMP-XP (cross-page next-region prediction) vs PMP-Limit, with
/// traffic cost.
pub fn xp_extension(scale: TraceScale) -> String {
    let specs = sweep_config();
    let cfg = RunConfig { scale, ..RunConfig::default() };
    let kinds = vec![
        PrefetcherKind::Pmp,
        PrefetcherKind::PmpXp,
        PrefetcherKind::PmpAdaptive,
        PrefetcherKind::PmpLimit,
    ];
    let (base, withs) = baseline_and(&specs, kinds.clone(), &cfg);
    let base_dram: u64 = base.iter().map(|o| o.result.stats.dram_requests).sum();
    let mut t = Table::new(&["configuration", "NIPC", "NMT"]);
    for (kind, outs) in kinds.iter().zip(withs) {
        let (_, g) = normalized_ipcs(&base, &outs);
        let dram: u64 = outs.iter().map(|o| o.result.stats.dram_requests).sum();
        t.row_owned(vec![
            kind.label(),
            super::f3(g),
            super::pct(dram as f64 / base_dram as f64),
        ]);
    }
    format!(
        "Extensions: cross-page prefetching and adaptive thresholds (paper future work)\n(expected: PMP-XP gains on region-crossing streams/walks; PMP-A trades a little peak NIPC for less traffic on hostile workloads)\n\n{}",
        t.render()
    )
}

/// **Placement study** (Section V-B's aside): "PMP (at L1) outperforms
/// the original Bingo at LLC by 16.5%" — heavyweight prefetchers are
/// realistic only at outer levels, where they see less and help less.
pub fn placement(scale: TraceScale) -> String {
    let specs = sweep_config();
    let cfg = RunConfig { scale, ..RunConfig::default() };
    let kinds = vec![PrefetcherKind::Pmp, PrefetcherKind::Bingo, PrefetcherKind::BingoAtLlc];
    let (base, withs) = baseline_and(&specs, kinds.clone(), &cfg);
    let mut t = Table::new(&["configuration", "NIPC"]);
    let mut results = Vec::new();
    for (kind, outs) in kinds.iter().zip(withs) {
        let (_, g) = normalized_ipcs(&base, &outs);
        results.push((kind.label(), g));
        t.row_owned(vec![kind.label(), super::f3(g)]);
    }
    let pmp = results[0].1;
    let bingo_llc = results[2].1;
    format!(
        "Placement study (Section V-B): PMP at L1 vs Bingo at its realistic LLC placement\n(paper: PMP-at-L1 beats Bingo-at-LLC by 16.5%)\n\n{}\nPMP-at-L1 vs Bingo-at-LLC: {}\n",
        t.render(),
        super::pct(pmp / bingo_llc - 1.0)
    )
}

/// **Related-work shootout** (paper §VI): the simple and historical
/// prefetchers against PMP, with storage — quantifying the paper's
/// qualitative discussion of constant-stride and delta-sequence
/// designs.
pub fn related_work(scale: TraceScale) -> String {
    // The full catalog: family differences only show across the whole
    // workload population (stride prefetchers trivially win on the
    // stride-heavy representative subset).
    let specs = pmp_traces::catalog();
    let cfg = RunConfig { scale, ..RunConfig::default() };
    let mut t = Table::new(&["prefetcher", "family", "NIPC", "KiB"]);
    let rows: [(PrefetcherKind, &str); 10] = [
        (PrefetcherKind::NextLine, "constant stride"),
        (PrefetcherKind::Stride, "constant stride"),
        (PrefetcherKind::Bop, "constant stride"),
        (PrefetcherKind::Sandbox, "constant stride"),
        (PrefetcherKind::Vldp, "delta sequence"),
        (PrefetcherKind::Ghb, "history buffer"),
        (PrefetcherKind::Isb, "temporal"),
        (PrefetcherKind::SppPpf, "delta sequence"),
        (PrefetcherKind::Sms, "bit vector"),
        (PrefetcherKind::Pmp, "bit vector (merged)"),
    ];
    let kinds: Vec<PrefetcherKind> = rows.iter().map(|(k, _)| k.clone()).collect();
    let (base, withs) = baseline_and(&specs, kinds, &cfg);
    for ((kind, family), outs) in rows.into_iter().zip(withs) {
        let (_, g) = normalized_ipcs(&base, &outs);
        let kib = kind.build().storage_bits() as f64 / 8.0 / 1024.0;
        t.row_owned(vec![kind.label(), family.into(), super::f3(g), format!("{kib:.1}")]);
    }
    format!(
        "Related work (paper Section VI): pattern families compared\n(note: our synthetic corpus embeds more pure strides than SPEC, so\nconstant-stride designs are stronger here than the paper's discussion\nimplies; PMP still leads the pattern-table families at 4.3KB)\n\n{}",
        t.render()
    )
}

/// Convenience: geomean NIPC of one prefetcher over the sweep subset
/// (used by integration tests).
pub fn subset_nipc(kind: &PrefetcherKind, scale: TraceScale) -> f64 {
    let specs = sweep_config();
    let cfg = RunConfig { scale, ..RunConfig::default() };
    geomean_nipc(&specs, kind, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext_schemes_tiny() {
        let s = ext_schemes(TraceScale::Tiny);
        assert!(s.contains("AFE"));
        assert!(s.contains("ARE"));
    }

    #[test]
    fn tab11_tiny() {
        let s = tab11_monitor_range(TraceScale::Tiny);
        assert!(s.contains("range 2"));
        assert!(s.contains("640")); // default PPT bytes
    }
}
