//! Headline single-core experiments sharing one set of runs:
//! Fig. 8 (NIPC), Fig. 9 (coverage & accuracy), Fig. 10 (useful /
//! useless prefetches), and the Section V-D NMT analysis.

use crate::prefetchers::PrefetcherKind;
use crate::runner::{geo_mean, normalized_ipcs, run_specs_grid, RunConfig, RunOutcome};
use pmp_stats::metrics::{accuracy, coverage, nmt, PrefetchBreakdown};
use pmp_stats::Table;
use pmp_traces::{catalog, Suite, TraceScale};
use pmp_types::CacheLevel;

/// The shared run grid: baseline plus the five paper prefetchers
/// (plus PMP-Limit for the NMT analysis) over all 125 traces.
pub struct HeadlineRuns {
    /// Baseline (no prefetcher) outcomes, one per trace.
    pub base: Vec<RunOutcome>,
    /// (prefetcher label, outcomes) in Fig. 8 order + pmp-limit last.
    pub with: Vec<(String, Vec<RunOutcome>)>,
}

impl HeadlineRuns {
    /// Execute the grid: all seven kinds × 125 traces as one scheduler
    /// product (each trace generated once, no per-kind barrier).
    pub fn execute(scale: TraceScale) -> Self {
        let specs = catalog();
        let cfg = RunConfig { scale, ..RunConfig::default() };
        let mut kinds = vec![PrefetcherKind::None];
        kinds.extend(PrefetcherKind::paper_five());
        kinds.push(PrefetcherKind::PmpLimit);
        let mut grids = run_specs_grid(&specs, &kinds, &cfg).into_iter();
        let base = grids.next().expect("baseline grid present");
        let with = kinds[1..].iter().map(PrefetcherKind::label).zip(grids).collect();
        HeadlineRuns { base, with }
    }

    /// Outcomes for one prefetcher label.
    pub fn outcomes(&self, label: &str) -> &[RunOutcome] {
        &self.with.iter().find(|(l, _)| l == label).expect("known prefetcher").1
    }
}

/// **Fig. 8** — normalized IPC per prefetcher: overall geomean plus
/// per-suite geomeans and the pairwise PMP advantage the paper quotes.
pub fn fig8(runs: &HeadlineRuns) -> String {
    let mut t = Table::new(&["prefetcher", "overall", "SPEC06", "SPEC17", "Ligra", "PARSEC", "max"]);
    let mut overall = Vec::new();
    for (label, outs) in runs.with.iter().filter(|(l, _)| l != "pmp-limit") {
        let (nipcs, g) = normalized_ipcs(&runs.base, outs);
        overall.push((label.clone(), g));
        let mut row = vec![label.clone(), super::f3(g)];
        for suite in Suite::ALL {
            let vals: Vec<f64> = nipcs
                .iter()
                .zip(&runs.base)
                .filter(|(_, b)| b.suite == suite)
                .map(|(n, _)| *n)
                .collect();
            row.push(super::f3(geo_mean(&vals)));
        }
        let max = nipcs.iter().cloned().fold(0.0f64, f64::max);
        row.push(super::f3(max));
        t.row_owned(row);
    }
    let pmp = overall.iter().find(|(l, _)| l == "pmp").expect("pmp ran").1;
    let mut vs = String::new();
    for (label, g) in &overall {
        if label != "pmp" {
            vs.push_str(&format!("  PMP vs {label}: {}\n", super::pct(pmp / g - 1.0)));
        }
    }
    format!(
        "Fig. 8: single-core normalized IPC (geomean over 125 traces)\n(paper: PMP +65.2% over baseline; beats DSPatch +41.3%, Bingo +2.6%, SPP+PPF +6.5%, Pythia +8.2%)\n\n{}\nPMP improvement over baseline: {}\n{}",
        t.render(),
        super::pct(pmp - 1.0),
        vs
    )
}

/// **Fig. 9** — prefetch coverage and accuracy per cache level,
/// averaged over traces (arithmetic mean of per-trace values, skipping
/// traces without the relevant events).
pub fn fig9(runs: &HeadlineRuns) -> String {
    let mut t = Table::new(&[
        "prefetcher",
        "cov L1D",
        "cov L2C",
        "cov LLC",
        "acc L1D",
        "acc L2C",
        "acc LLC",
    ]);
    for (label, outs) in runs.with.iter().filter(|(l, _)| l != "pmp-limit") {
        let mut row = vec![label.clone()];
        for level in CacheLevel::ALL {
            let vals: Vec<f64> = runs
                .base
                .iter()
                .zip(outs)
                .filter_map(|(b, w)| coverage(&b.result.stats, &w.result.stats, level))
                .collect();
            row.push(if vals.is_empty() {
                "-".into()
            } else {
                super::pct(vals.iter().sum::<f64>() / vals.len() as f64)
            });
        }
        for level in CacheLevel::ALL {
            let vals: Vec<f64> =
                outs.iter().filter_map(|w| accuracy(&w.result.stats, level)).collect();
            row.push(if vals.is_empty() {
                "-".into()
            } else {
                super::pct(vals.iter().sum::<f64>() / vals.len() as f64)
            });
        }
        t.row_owned(row);
    }
    format!(
        "Fig. 9: coverage and accuracy by cache level\n(paper: PMP leads L2C/LLC coverage; L1D accuracy high for PMP and Bingo; L2C/LLC accuracy lower for all — training is L1-side)\n\n{}",
        t.render()
    )
}

/// **Fig. 10** — average useful / useless prefetches per trace, by
/// fill level.
pub fn fig10(runs: &HeadlineRuns) -> String {
    let mut t = Table::new(&[
        "prefetcher",
        "L1D useful",
        "L1D useless",
        "L2C useful",
        "L2C useless",
        "LLC useful",
        "LLC useless",
    ]);
    for (label, outs) in runs.with.iter().filter(|(l, _)| l != "pmp-limit") {
        let n = outs.len() as f64;
        let mut sums = [[0u64; 2]; 3];
        for o in outs {
            let b = PrefetchBreakdown::of(&o.result.stats);
            for (l, s) in sums.iter_mut().enumerate() {
                s[0] += b.useful[l];
                s[1] += b.useless[l];
            }
        }
        let mut row = vec![label.clone()];
        for s in &sums {
            row.push(format!("{:.0}", s[0] as f64 / n));
            row.push(format!("{:.0}", s[1] as f64 / n));
        }
        t.row_owned(row);
    }
    format!(
        "Fig. 10: average useful and useless prefetches per trace, by fill level\n(paper: PMP restrains L1D pollution while prefetching speculatively into L2C/LLC)\n\n{}",
        t.render()
    )
}

/// **Section V-D** — Normalized Memory Traffic, including PMP-Limit.
pub fn nmt_report(runs: &HeadlineRuns) -> String {
    let mut t = Table::new(&["prefetcher", "NMT", "prefetches issued per trace"]);
    for (label, outs) in &runs.with {
        let vals: Vec<f64> = runs
            .base
            .iter()
            .zip(outs)
            .filter_map(|(b, w)| nmt(&b.result.stats, &w.result.stats))
            .collect();
        let mean_nmt = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
        let issued: u64 = outs.iter().map(|o| o.result.stats.pf_issued).sum();
        t.row_owned(vec![
            label.clone(),
            super::pct(mean_nmt),
            format!("{:.0}", issued as f64 / outs.len() as f64),
        ]);
    }
    format!(
        "Section V-D: Normalized Memory Traffic\n(paper: SPP+PPF 129.0%, Pythia 139.1%, DSPatch 159.8%, Bingo 164.2%, PMP 199.6%; PMP-Limit 159.0%)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_pipeline_at_tiny_scale() {
        // One shared grid exercises all four reports.
        let runs = HeadlineRuns::execute(TraceScale::Tiny);
        let f8 = fig8(&runs);
        assert!(f8.contains("PMP vs bingo"));
        let f9 = fig9(&runs);
        assert!(f9.contains("cov L2C"));
        let f10 = fig10(&runs);
        assert!(f10.contains("L1D useless"));
        let n = nmt_report(&runs);
        assert!(n.contains("pmp-limit"));
    }
}
