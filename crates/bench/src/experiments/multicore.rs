//! Fig. 13 — 4-core performance on homogeneous and heterogeneous
//! multi-programmed workloads (Table VII mixes).

use crate::prefetchers::PrefetcherKind;
use crate::runner::{geo_mean, parallel_map, RunConfig};
use pmp_sim::{MultiCoreSystem, SystemConfig};
use pmp_stats::Table;
use pmp_traces::mix::{table_vii_mixes, MixSpec, MpkiClass};
use pmp_traces::{catalog, TraceScale, TraceSpec};
use pmp_types::TraceOp;
use std::collections::HashMap;

/// Number of homogeneous workloads sampled from the 125 traces (a
/// subset keeps the 4-core grid tractable; `PMP_SCALE` and this knob
/// trade fidelity for time).
const HOMOGENEOUS_SAMPLES: usize = 25;
/// Heterogeneous mixes evaluated per Table VII kind.
const HETERO_PER_KIND: usize = 3;

fn run_mix(
    traces: &[&[TraceOp]; 4],
    kind: &PrefetcherKind,
    scale: TraceScale,
) -> f64 {
    let cfg = SystemConfig::quad_core();
    let prefetchers = (0..4).map(|_| kind.build()).collect();
    let mut sys = MultiCoreSystem::new(cfg, prefetchers);
    // ~10 instructions per memory op across the archetypes: measure a
    // window comparable to the whole trace, as the single-core runs do.
    let measure = (scale.mem_ops() as u64) * 10;
    let r = sys.run(&traces[..], scale.warmup_instructions(), measure);
    // Aggregate core IPCs geometrically (normalisation happens against
    // the baseline run of the same mix).
    geo_mean(&r.ipcs())
}

fn mix_nipc(
    specs: &HashMap<String, &TraceSpec>,
    mix: &[String; 4],
    kind: &PrefetcherKind,
    scale: TraceScale,
) -> (f64, f64) {
    let built: Vec<Vec<TraceOp>> = mix
        .iter()
        .map(|name| specs.get(name).expect("catalog trace").build(scale).ops)
        .collect();
    let refs: [&[TraceOp]; 4] =
        [&built[0], &built[1], &built[2], &built[3]];
    let base = run_mix(&refs, &PrefetcherKind::None, scale);
    let with = run_mix(&refs, kind, scale);
    (with / base, base)
}

/// Classify the catalog by single-core baseline LLC MPKI (the paper's
/// Table VII procedure) at a quick scale.
pub fn classify_catalog(scale: TraceScale) -> Vec<(String, MpkiClass)> {
    let specs = catalog();
    let cfg = RunConfig { scale, ..RunConfig::default() };
    let outs = crate::runner::run_traces(&specs, &PrefetcherKind::None, &cfg);
    outs.into_iter()
        .map(|o| {
            let class = MpkiClass::of(o.result.stats.llc_mpki());
            (o.trace, class)
        })
        .collect()
}

/// **Fig. 13** — multi-core NIPC for the five prefetchers plus
/// PMP-Limit, on homogeneous workloads and Table VII mixes.
pub fn fig13(scale: TraceScale) -> String {
    let all = catalog();
    let by_name: HashMap<String, &TraceSpec> =
        all.iter().map(|s| (s.name.clone(), s)).collect();

    // Homogeneous: every sampled trace on all four cores.
    let homogeneous: Vec<[String; 4]> = all
        .iter()
        .step_by((all.len() / HOMOGENEOUS_SAMPLES).max(1))
        .take(HOMOGENEOUS_SAMPLES)
        .map(|s| std::array::from_fn(|_| s.name.clone()))
        .collect();

    // Heterogeneous: Table VII mixes from the MPKI classification.
    let classified = classify_catalog(scale);
    let mixes: Vec<MixSpec> = table_vii_mixes(&classified, 2022);
    let hetero: Vec<[String; 4]> = {
        // Take HETERO_PER_KIND of each of the 6 kinds.
        let mut chosen = Vec::new();
        for kind in [
            "all-low",
            "all-medium",
            "all-high",
            "half-low-half-medium",
            "half-low-half-high",
            "half-medium-half-high",
        ] {
            chosen.extend(
                mixes
                    .iter()
                    .filter(|m| m.kind == kind)
                    .take(HETERO_PER_KIND)
                    .map(|m| m.traces.clone()),
            );
        }
        chosen
    };

    let mut kinds = PrefetcherKind::paper_five();
    kinds.push(PrefetcherKind::PmpLimit);

    let mut t = Table::new(&["prefetcher", "homogeneous", "heterogeneous", "overall"]);
    for kind in &kinds {
        let homo: Vec<f64> =
            parallel_map(&homogeneous, |mix| mix_nipc(&by_name, mix, kind, scale).0);
        let het: Vec<f64> =
            parallel_map(&hetero, |mix| mix_nipc(&by_name, mix, kind, scale).0);
        let both: Vec<f64> = homo.iter().chain(het.iter()).copied().collect();
        t.row_owned(vec![
            kind.label(),
            super::f3(geo_mean(&homo)),
            super::f3(geo_mean(&het)),
            super::f3(geo_mean(&both)),
        ]);
    }
    format!(
        "Fig. 13: 4-core performance ({} homogeneous workloads, {} Table-VII mixes)\n(paper: PMP beats DSPatch +39.6%, SPP+PPF +7.3%, Pythia +6.9%; matches Bingo; PMP-Limit +1% over Bingo)\n\n{}",
        homogeneous.len(),
        hetero.len(),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_catalog() {
        let c = classify_catalog(TraceScale::Tiny);
        assert_eq!(c.len(), 125);
    }

    #[test]
    fn one_mix_runs() {
        let all = catalog();
        let by_name: HashMap<String, &TraceSpec> =
            all.iter().map(|s| (s.name.clone(), s)).collect();
        let mix: [String; 4] = std::array::from_fn(|i| all[i * 3].name.clone());
        let (nipc, base) = mix_nipc(&by_name, &mix, &PrefetcherKind::Pmp, TraceScale::Tiny);
        assert!(base > 0.0);
        assert!(nipc > 0.1, "nipc = {nipc}");
    }
}
