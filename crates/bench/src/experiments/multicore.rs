//! Fig. 13 — 4-core performance on homogeneous and heterogeneous
//! multi-programmed workloads (Table VII mixes).
//!
//! Every 4-core mix is one [`CellSpec::Mix`] grid cell behind the full
//! robustness boundary: validated, panic-isolated, watchdogged, and
//! journaled per core — so an interrupted Fig. 13 sweep resumes with
//! `--resume` exactly like the single-core figures.

use crate::prefetchers::PrefetcherKind;
use crate::runner::{geo_mean, run_grid, CellSpec, MixCell, RunConfig, RunOutcome};
use pmp_sim::{SimStats, SystemConfig};
use pmp_stats::Table;
use pmp_traces::mix::{table_vii_mixes, MixSpec, MpkiClass};
use pmp_traces::{catalog, TraceScale, TraceSpec};
use pmp_types::HarnessError;
use std::collections::HashMap;

/// Number of homogeneous workloads sampled from the 125 traces (a
/// subset keeps the 4-core grid tractable; `PMP_SCALE` and this knob
/// trade fidelity for time).
const HOMOGENEOUS_SAMPLES: usize = 25;
/// Heterogeneous mixes evaluated per Table VII kind.
const HETERO_PER_KIND: usize = 3;
/// The six Table VII mix compositions.
const MIX_KINDS: [&str; 6] = [
    "all-low",
    "all-medium",
    "all-high",
    "half-low-half-medium",
    "half-low-half-high",
    "half-medium-half-high",
];

/// Resolve a Table VII mix (four catalog trace names) into a runnable
/// [`MixCell`].
///
/// # Errors
///
/// Returns [`HarnessError::InvalidConfig`] when a mix references a
/// trace name missing from the catalog — a mix-generation bug degrades
/// to one reported gap instead of panicking the sweep.
fn mix_cell(
    by_name: &HashMap<String, &TraceSpec>,
    name: String,
    traces: &[String; 4],
) -> Result<MixCell, HarnessError> {
    let resolve = |trace: &String| -> Result<TraceSpec, HarnessError> {
        by_name.get(trace).map(|s| (*s).clone()).ok_or_else(|| {
            HarnessError::invalid(
                format!("mix '{name}'"),
                format!("trace '{trace}' is not in the catalog"),
            )
        })
    };
    let specs = [
        resolve(&traces[0])?,
        resolve(&traces[1])?,
        resolve(&traces[2])?,
        resolve(&traces[3])?,
    ];
    Ok(MixCell { name, specs })
}

/// Classify the catalog by single-core baseline LLC MPKI (the paper's
/// Table VII procedure) at a quick scale.
///
/// Runs through the checked grid path: a broken trace costs its own
/// classification (it is simply absent from the result), not the sweep.
pub fn classify_catalog(scale: TraceScale) -> Vec<(String, MpkiClass)> {
    let cells: Vec<CellSpec> = catalog().into_iter().map(CellSpec::Synthetic).collect();
    let cfg = RunConfig { scale, ..RunConfig::default() };
    let (outs, summary) = run_grid(&cells, &[PrefetcherKind::None], &cfg);
    if !summary.is_clean() {
        eprintln!("classify_catalog: {}", summary.report());
    }
    outs.into_iter()
        .map(|o| {
            let class = MpkiClass::of(o.result.stats.llc_mpki());
            (o.trace, class)
        })
        .collect()
}

/// Geometric mean of a mix outcome's per-core IPCs (normalisation
/// happens against the baseline run of the same mix).
fn mix_ipc(outcome: &RunOutcome) -> f64 {
    let ipcs: Vec<f64> = outcome.per_core.iter().map(SimStats::ipc).collect();
    geo_mean(&ipcs)
}

/// **Fig. 13** — multi-core NIPC for the five prefetchers plus
/// PMP-Limit, on homogeneous workloads and Table VII mixes.
pub fn fig13(scale: TraceScale) -> String {
    let all = catalog();
    let by_name: HashMap<String, &TraceSpec> =
        all.iter().map(|s| (s.name.clone(), s)).collect();

    // Homogeneous: every sampled trace on all four cores.
    let mut cells: Vec<CellSpec> = Vec::new();
    let mut homo_names: Vec<String> = Vec::new();
    for spec in all
        .iter()
        .step_by((all.len() / HOMOGENEOUS_SAMPLES).max(1))
        .take(HOMOGENEOUS_SAMPLES)
    {
        let mix = MixCell::homogeneous(spec);
        homo_names.push(mix.name.clone());
        cells.push(CellSpec::Mix(Box::new(mix)));
    }

    // Heterogeneous: Table VII mixes from the MPKI classification.
    let classified = classify_catalog(scale);
    let mixes: Vec<MixSpec> = table_vii_mixes(&classified, 2022);
    let mut hetero_names: Vec<String> = Vec::new();
    for kind in MIX_KINDS {
        for (i, m) in mixes.iter().filter(|m| m.kind == kind).take(HETERO_PER_KIND).enumerate()
        {
            match mix_cell(&by_name, format!("{kind}/{i}"), &m.traces) {
                Ok(mix) => {
                    hetero_names.push(mix.name.clone());
                    cells.push(CellSpec::Mix(Box::new(mix)));
                }
                Err(e) => eprintln!("fig13: skipped mix: {e}"),
            }
        }
    }

    let mut kinds = vec![PrefetcherKind::None];
    kinds.extend(PrefetcherKind::paper_five());
    kinds.push(PrefetcherKind::PmpLimit);

    let cfg = RunConfig { scale, system: SystemConfig::quad_core(), ..RunConfig::default() };
    let (outs, summary) = run_grid(&cells, &kinds, &cfg);
    let by_cell: HashMap<(&str, &str), &RunOutcome> =
        outs.iter().map(|o| ((o.prefetcher.as_str(), o.trace.as_str()), o)).collect();

    // NIPC of one mix under one prefetcher, None when either run failed
    // (the gap is already in the sweep summary).
    let baseline = PrefetcherKind::None.label();
    let nipc = |label: &str, mix: &String| -> Option<f64> {
        let with = by_cell.get(&(label, mix.as_str()))?;
        let base = by_cell.get(&(baseline.as_str(), mix.as_str()))?;
        Some(mix_ipc(with) / mix_ipc(base).max(1e-12))
    };

    let mut t = Table::new(&["prefetcher", "homogeneous", "heterogeneous", "overall"]);
    for kind in kinds.iter().skip(1) {
        let label = kind.label();
        let homo: Vec<f64> = homo_names.iter().filter_map(|m| nipc(&label, m)).collect();
        let het: Vec<f64> = hetero_names.iter().filter_map(|m| nipc(&label, m)).collect();
        let both: Vec<f64> = homo.iter().chain(het.iter()).copied().collect();
        t.row_owned(vec![
            kind.label(),
            super::f3(geo_mean(&homo)),
            super::f3(geo_mean(&het)),
            super::f3(geo_mean(&both)),
        ]);
    }
    let mut out = format!(
        "Fig. 13: 4-core performance ({} homogeneous workloads, {} Table-VII mixes)\n(paper: PMP beats DSPatch +39.6%, SPP+PPF +7.3%, Pythia +6.9%; matches Bingo; PMP-Limit +1% over Bingo)\n\n{}",
        homo_names.len(),
        hetero_names.len(),
        t.render()
    );
    if !summary.is_clean() || summary.resumed > 0 {
        out.push('\n');
        out.push_str(&summary.report());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_catalog() {
        let c = classify_catalog(TraceScale::Tiny);
        assert_eq!(c.len(), 125);
    }

    #[test]
    fn one_mix_runs() {
        let all = catalog();
        let by_name: HashMap<String, &TraceSpec> =
            all.iter().map(|s| (s.name.clone(), s)).collect();
        let names: [String; 4] = std::array::from_fn(|i| all[i * 3].name.clone());
        let mix = mix_cell(&by_name, "test/0".into(), &names).expect("catalog names resolve");
        let cfg = RunConfig {
            scale: TraceScale::Tiny,
            system: SystemConfig::quad_core(),
            ..RunConfig::default()
        };
        let base = crate::runner::run_mix_checked(&mix, &PrefetcherKind::None, &cfg)
            .expect("baseline mix");
        let with = crate::runner::run_mix_checked(&mix, &PrefetcherKind::Pmp, &cfg)
            .expect("pmp mix");
        let nipc = mix_ipc(&with) / mix_ipc(&base);
        assert!(mix_ipc(&base) > 0.0);
        assert!(nipc > 0.1, "nipc = {nipc}");
    }

    #[test]
    fn unknown_mix_trace_is_a_typed_error() {
        let by_name: HashMap<String, &TraceSpec> = HashMap::new();
        let names: [String; 4] = std::array::from_fn(|i| format!("ghost_{i}"));
        let err = mix_cell(&by_name, "bad/0".into(), &names).expect_err("must not resolve");
        assert_eq!(err.kind_tag(), "invalid-config");
        assert!(err.to_string().contains("ghost_0"), "{err}");
    }
}
