//! One function per paper table/figure; every experiment returns a
//! rendered report string so binaries, `run_all`, and integration tests
//! share the exact same code paths.
//!
//! See DESIGN.md §4 for the experiment ↔ paper mapping.

pub mod ablation;
pub mod headline;
pub mod motivation;
pub mod multicore;
pub mod sensitivity;
pub mod storage;

use pmp_traces::TraceScale;

/// Resolve the experiment scale from `PMP_SCALE`
/// (`tiny`/`small`/`standard`/`large`), defaulting to `standard`.
pub fn scale_from_env() -> TraceScale {
    match std::env::var("PMP_SCALE").as_deref() {
        Ok("tiny") => TraceScale::Tiny,
        Ok("small") => TraceScale::Small,
        Ok("large") => TraceScale::Large,
        _ => TraceScale::Standard,
    }
}

/// Format a float as the paper prints NIPCs (three decimals).
pub(crate) fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a percentage with one decimal.
pub(crate) fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_scale_parsing() {
        // No env set in tests: default.
        std::env::remove_var("PMP_SCALE");
        assert_eq!(scale_from_env(), TraceScale::Standard);
    }

    #[test]
    fn formatting() {
        assert_eq!(f3(1.65189), "1.652");
        assert_eq!(pct(0.652), "65.2%");
    }
}
