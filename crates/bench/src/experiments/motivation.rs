//! Motivation-section experiments: Table I, Fig. 2, Fig. 4, Fig. 5.

use pmp_analysis::collision::{redundancy, table_i};
use pmp_analysis::features::Feature;
use pmp_analysis::frequency::FrequencyCensus;
use pmp_analysis::heatmap::HeatMap;
use pmp_analysis::icdd::average_icdd;
use pmp_analysis::capture_patterns;
use pmp_core::capture::CapturedPattern;
use pmp_stats::Table;
use pmp_traces::{catalog, TraceScale, TraceSpec};
use pmp_types::RegionGeometry;

use crate::runner::parallel_map;

fn all_patterns(specs: &[TraceSpec], scale: TraceScale) -> Vec<CapturedPattern> {
    parallel_map(specs, |spec| capture_patterns(&spec.build(scale)))
        .into_iter()
        .flatten()
        .collect()
}

/// **Table I** — average Pattern Collision Rate and Pattern Duplicate
/// Rate for the five indexing features, over all 125 traces.
///
/// Expected shape (paper): fine features (Address, PC+Address) have
/// PCR near 1 but high PDR; coarse features (PC, Trigger Offset) the
/// reverse. Also reports the Bingo-style redundancy fraction the paper
/// quotes as 82.9% for PC+Address.
pub fn tab1_pcr_pdr(scale: TraceScale) -> String {
    let specs = catalog();
    let geom = RegionGeometry::default();
    let patterns = all_patterns(&specs, scale);
    let mut t = Table::new(&["Feature", "bits", "PCR", "PDR", "redundant entries"]);
    for s in table_i(&patterns, geom) {
        let red = redundancy(&patterns, s.feature, geom);
        t.row_owned(vec![
            s.feature.name().into(),
            s.feature.bits().to_string(),
            format!("{:.1}", s.pcr),
            format!("{:.1}", s.pdr),
            super::pct(red),
        ]);
    }
    format!(
        "Table I: Average Pattern Collision/Duplicate Rates ({} patterns from {} traces)\n\n{}",
        patterns.len(),
        specs.len(),
        t.render()
    )
}

/// **Fig. 2 / Observation 1** — the pattern-occurrence census: top-k
/// occurrence shares and the singleton fraction.
pub fn fig2_top_patterns(scale: TraceScale) -> String {
    let specs = catalog();
    let patterns = all_patterns(&specs, scale);
    let census = FrequencyCensus::new(&patterns);
    let mut t = Table::new(&["metric", "value"]);
    t.row_owned(vec!["total occurrences".into(), census.total_occurrences.to_string()]);
    t.row_owned(vec!["distinct patterns".into(), census.distinct.to_string()]);
    t.row_owned(vec![
        "distinct appearing once".into(),
        super::pct(census.singleton_fraction),
    ]);
    for k in [1usize, 10, 100, 1000] {
        t.row_owned(vec![format!("top-{k} share"), super::pct(census.top_share(k))]);
    }
    format!(
        "Fig. 2 / Observation 1: pattern occurrence census\n(paper: top-10 = 33.1%, top-100 = 57.4%, top-1000 = 73.8%, singletons = 75.6%)\n\n{}",
        t.render()
    )
}

/// **Fig. 4 / Observation 3** — average ICDD per feature, summarised
/// over the 125 traces (mean / median / quartiles of the per-trace
/// average ICDDs, i.e. the box plot's numbers).
pub fn fig4_icdd(scale: TraceScale) -> String {
    let specs = catalog();
    let per_trace: Vec<Vec<f64>> = parallel_map(&specs, |spec| {
        let pats = capture_patterns(&spec.build(scale));
        Feature::ALL.iter().map(|f| average_icdd(&pats, *f)).collect()
    });
    let mut t = Table::new(&["Feature", "mean", "p25", "median", "p75"]);
    for (fi, f) in Feature::ALL.iter().enumerate() {
        let mut vals: Vec<f64> = per_trace.iter().map(|v| v[fi]).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite ICDD"));
        let n = vals.len();
        let mean = vals.iter().sum::<f64>() / n as f64;
        t.row_owned(vec![
            f.name().into(),
            super::f3(mean),
            super::f3(vals[n / 4]),
            super::f3(vals[n / 2]),
            super::f3(vals[3 * n / 4]),
        ]);
    }
    format!(
        "Fig. 4 / Observation 3: per-feature average ICDD over 125 traces\n(paper: Trigger Offset clusters are the most similar)\n\n{}",
        t.render()
    )
}

/// **Fig. 5** — pattern heat maps for an MCF-like and an Astar-like
/// trace under Trigger Offset / PC+Address / PC indexing, rendered as
/// ASCII, plus the diagonal-band mass that quantifies the "slash"
/// structure.
pub fn fig5_heatmaps(scale: TraceScale) -> String {
    let all = catalog();
    let geom = RegionGeometry::default();
    let mut out = String::new();
    for (trace_name, features) in [
        ("spec06.mcf_2", vec![Feature::TriggerOffset, Feature::PcAddress, Feature::Pc]),
        ("spec06.astar_0", vec![Feature::TriggerOffset]),
    ] {
        let spec = all.iter().find(|s| s.name == trace_name).expect("catalog trace");
        let pats = capture_patterns(&spec.build(scale));
        for f in features {
            let hm = HeatMap::new(&pats, f, geom);
            out.push_str(&format!(
                "--- {} indexed by {} (diagonal band mass ±3: {}) ---\n{}\n",
                trace_name,
                f.name(),
                super::pct(hm.diagonal_band_mass(3)),
                hm.render()
            ));
        }
    }
    format!("Fig. 5: pattern heat maps (x = region offset, y = 6-bit feature value)\n\n{out}")
}

/// **Per-suite motivation breakdown** (extends Figs. 2/4): the pattern
/// census and feature-clustering quality per workload family, showing
/// *where* Observations 1 and 3 come from.
pub fn per_suite(scale: TraceScale) -> String {
    use pmp_traces::Suite;
    let mut t = Table::new(&[
        "suite",
        "patterns",
        "distinct",
        "top-10 share",
        "ICDD trig",
        "ICDD PC",
        "ICDD addr",
    ]);
    for suite in Suite::ALL {
        let specs = pmp_traces::catalog_for(suite);
        let patterns = all_patterns(&specs, scale);
        let census = FrequencyCensus::new(&patterns);
        let icdd = |f: Feature| average_icdd(&patterns, f);
        t.row_owned(vec![
            suite.to_string(),
            census.total_occurrences.to_string(),
            census.distinct.to_string(),
            super::pct(census.top_share(10)),
            format!("{:.2}", icdd(Feature::TriggerOffset)),
            format!("{:.2}", icdd(Feature::Pc)),
            format!("{:.2}", icdd(Feature::Address)),
        ]);
    }
    format!(
        "Per-suite motivation breakdown (Observations 1 and 3 by family)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab1_runs_at_tiny_scale() {
        let s = tab1_pcr_pdr(TraceScale::Tiny);
        assert!(s.contains("Trigger Offset"));
        assert!(s.contains("PC+Address"));
    }

    #[test]
    fn fig2_runs_at_tiny_scale() {
        let s = fig2_top_patterns(TraceScale::Tiny);
        assert!(s.contains("top-10 share"));
    }

    #[test]
    fn per_suite_runs_at_tiny_scale() {
        let s = per_suite(TraceScale::Tiny);
        assert!(s.contains("SPEC06"));
        assert!(s.contains("PARSEC"));
        assert!(s.contains("ICDD trig"));
    }

    #[test]
    fn fig5_runs_at_tiny_scale() {
        let s = fig5_heatmaps(TraceScale::Tiny);
        assert!(s.contains("diagonal band mass"));
        assert!(s.contains("spec06.astar_0"));
    }
}
