//! The prefetcher registry: one enum naming every configuration the
//! experiments run, buildable into a boxed [`Prefetcher`].

use pmp_baselines::{Bingo, Bop, DsPatch, Ghb, Isb, Pythia, Sandbox, Sms, SppPpf, Vldp};
use pmp_core::{DesignB, DesignBConfig, Pmp, PmpConfig};
use pmp_prefetch::{NextLine, NoPrefetch, PlacedLow, Prefetcher, StridePrefetcher};

/// Every prefetcher configuration used by the experiments.
#[derive(Debug, Clone)]
pub enum PrefetcherKind {
    /// Non-prefetching baseline.
    None,
    /// Next-line, degree 4.
    NextLine,
    /// IP-stride, degree 4.
    Stride,
    /// Classic SMS.
    Sms,
    /// Best-Offset prefetcher (related work, §VI-A).
    Bop,
    /// Sandbox prefetcher (related work, §VI-A).
    Sandbox,
    /// VLDP delta-sequence prefetcher (related work, §VI-B).
    Vldp,
    /// GHB G/DC history-buffer prefetcher (related work, §VI-C).
    Ghb,
    /// ISB temporal prefetcher (related work, §VI-C).
    Isb,
    /// DSPatch (paper comparator).
    DsPatch,
    /// Enhanced Bingo (paper comparator).
    Bingo,
    /// Original-placement Bingo attached at the LLC (Section V-B's
    /// "PMP (at L1) outperforms the original Bingo at LLC by 16.5%").
    BingoAtLlc,
    /// SPP+PPF (paper comparator).
    SppPpf,
    /// Pythia (paper comparator).
    Pythia,
    /// PMP with the paper's default configuration.
    Pmp,
    /// PMP-Limit (low-level prefetch degree 1).
    PmpLimit,
    /// PMP-XP: the cross-page future-work extension.
    PmpXp,
    /// PMP-A: feedback-adaptive L1D threshold extension.
    PmpAdaptive,
    /// Design B with the given associativity (Table VIII).
    DesignB(usize),
    /// PMP with a custom configuration (parameter sweeps/ablations).
    PmpCustom(Box<PmpConfig>),
}

impl PrefetcherKind {
    /// The five prefetchers of the paper's headline comparison (Fig. 8),
    /// in plot order.
    pub fn paper_five() -> Vec<PrefetcherKind> {
        vec![
            PrefetcherKind::DsPatch,
            PrefetcherKind::Bingo,
            PrefetcherKind::SppPpf,
            PrefetcherKind::Pythia,
            PrefetcherKind::Pmp,
        ]
    }

    /// Instantiate the prefetcher.
    pub fn build(&self) -> Box<dyn Prefetcher> {
        match self {
            PrefetcherKind::None => Box::new(NoPrefetch),
            PrefetcherKind::NextLine => Box::new(NextLine::new(4)),
            PrefetcherKind::Stride => Box::new(StridePrefetcher::new(4)),
            PrefetcherKind::Sms => Box::<Sms>::default(),
            PrefetcherKind::Bop => Box::<Bop>::default(),
            PrefetcherKind::Sandbox => Box::<Sandbox>::default(),
            PrefetcherKind::Vldp => Box::<Vldp>::default(),
            PrefetcherKind::Ghb => Box::<Ghb>::default(),
            PrefetcherKind::Isb => Box::<Isb>::default(),
            PrefetcherKind::DsPatch => Box::<DsPatch>::default(),
            PrefetcherKind::Bingo => Box::<Bingo>::default(),
            PrefetcherKind::BingoAtLlc => {
                Box::new(PlacedLow::new(Bingo::default(), pmp_types::CacheLevel::Llc))
            }
            PrefetcherKind::SppPpf => Box::<SppPpf>::default(),
            PrefetcherKind::Pythia => Box::<Pythia>::default(),
            PrefetcherKind::Pmp => Box::new(Pmp::new(PmpConfig::default())),
            PrefetcherKind::PmpLimit => Box::new(Pmp::new(PmpConfig::pmp_limit())),
            PrefetcherKind::PmpXp => Box::new(Pmp::new(PmpConfig::cross_page())),
            PrefetcherKind::PmpAdaptive => Box::new(Pmp::new(PmpConfig::adaptive())),
            PrefetcherKind::DesignB(ways) => Box::new(DesignB::new(DesignBConfig {
                ways: *ways,
                ..DesignBConfig::default()
            })),
            PrefetcherKind::PmpCustom(cfg) => Box::new(Pmp::new((**cfg).clone())),
        }
    }

    /// Display label used in experiment output.
    pub fn label(&self) -> String {
        match self {
            PrefetcherKind::None => "baseline".into(),
            PrefetcherKind::NextLine => "next-line".into(),
            PrefetcherKind::Stride => "ip-stride".into(),
            PrefetcherKind::Sms => "sms".into(),
            PrefetcherKind::Bop => "bop".into(),
            PrefetcherKind::Sandbox => "sandbox".into(),
            PrefetcherKind::Vldp => "vldp".into(),
            PrefetcherKind::Ghb => "ghb".into(),
            PrefetcherKind::Isb => "isb".into(),
            PrefetcherKind::DsPatch => "dspatch".into(),
            PrefetcherKind::Bingo => "bingo".into(),
            PrefetcherKind::BingoAtLlc => "bingo@llc".into(),
            PrefetcherKind::SppPpf => "spp-ppf".into(),
            PrefetcherKind::Pythia => "pythia".into(),
            PrefetcherKind::Pmp => "pmp".into(),
            PrefetcherKind::PmpLimit => "pmp-limit".into(),
            PrefetcherKind::PmpXp => "pmp-xp".into(),
            PrefetcherKind::PmpAdaptive => "pmp-adaptive".into(),
            PrefetcherKind::DesignB(w) => format!("design-b/{w}w"),
            PrefetcherKind::PmpCustom(_) => "pmp-custom".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_build() {
        let kinds = [
            PrefetcherKind::None,
            PrefetcherKind::NextLine,
            PrefetcherKind::Stride,
            PrefetcherKind::Sms,
            PrefetcherKind::Bop,
            PrefetcherKind::Sandbox,
            PrefetcherKind::Vldp,
            PrefetcherKind::Ghb,
            PrefetcherKind::Isb,
            PrefetcherKind::DsPatch,
            PrefetcherKind::Bingo,
            PrefetcherKind::BingoAtLlc,
            PrefetcherKind::SppPpf,
            PrefetcherKind::Pythia,
            PrefetcherKind::Pmp,
            PrefetcherKind::PmpLimit,
            PrefetcherKind::PmpXp,
            PrefetcherKind::PmpAdaptive,
            PrefetcherKind::DesignB(8),
            PrefetcherKind::PmpCustom(Box::default()),
        ];
        for k in kinds {
            let p = k.build();
            assert!(!p.name().is_empty());
            assert!(!k.label().is_empty());
        }
    }

    #[test]
    fn paper_five_order() {
        let five = PrefetcherKind::paper_five();
        assert_eq!(five.len(), 5);
        assert_eq!(five[4].label(), "pmp");
    }
}
