//! The prefetcher registry: one enum naming every configuration the
//! experiments run, buildable into a boxed [`Prefetcher`].

use pmp_baselines::{Bingo, Bop, DsPatch, Ghb, Isb, Pythia, Sandbox, Sms, SppPpf, Vldp};
use pmp_core::{DesignB, DesignBConfig, Pmp, PmpConfig};
use pmp_prefetch::{
    AccessInfo, Introspect, NextLine, NoPrefetch, PlacedLow, Prefetcher, PrefetchRequest,
    StridePrefetcher,
};
use pmp_types::HarnessError;

/// Every prefetcher configuration used by the experiments.
#[derive(Debug, Clone)]
pub enum PrefetcherKind {
    /// Non-prefetching baseline.
    None,
    /// Next-line, degree 4.
    NextLine,
    /// IP-stride, degree 4.
    Stride,
    /// Classic SMS.
    Sms,
    /// Best-Offset prefetcher (related work, §VI-A).
    Bop,
    /// Sandbox prefetcher (related work, §VI-A).
    Sandbox,
    /// VLDP delta-sequence prefetcher (related work, §VI-B).
    Vldp,
    /// GHB G/DC history-buffer prefetcher (related work, §VI-C).
    Ghb,
    /// ISB temporal prefetcher (related work, §VI-C).
    Isb,
    /// DSPatch (paper comparator).
    DsPatch,
    /// Enhanced Bingo (paper comparator).
    Bingo,
    /// Original-placement Bingo attached at the LLC (Section V-B's
    /// "PMP (at L1) outperforms the original Bingo at LLC by 16.5%").
    BingoAtLlc,
    /// SPP+PPF (paper comparator).
    SppPpf,
    /// Pythia (paper comparator).
    Pythia,
    /// PMP with the paper's default configuration.
    Pmp,
    /// PMP-Limit (low-level prefetch degree 1).
    PmpLimit,
    /// PMP-XP: the cross-page future-work extension.
    PmpXp,
    /// PMP-A: feedback-adaptive L1D threshold extension.
    PmpAdaptive,
    /// Design B with the given associativity (Table VIII).
    DesignB(usize),
    /// PMP with a custom configuration (parameter sweeps/ablations).
    PmpCustom(Box<PmpConfig>),
    /// Fault-injection mock: behaves like no prefetcher, then panics on
    /// the Nth demand load it observes. Exists so the runner's panic
    /// isolation can be exercised end-to-end (a deliberately poisoned
    /// grid cell must not take the sweep down with it).
    FaultyPanicAfter(u64),
}

impl PrefetcherKind {
    /// The five prefetchers of the paper's headline comparison (Fig. 8),
    /// in plot order.
    pub fn paper_five() -> Vec<PrefetcherKind> {
        vec![
            PrefetcherKind::DsPatch,
            PrefetcherKind::Bingo,
            PrefetcherKind::SppPpf,
            PrefetcherKind::Pythia,
            PrefetcherKind::Pmp,
        ]
    }

    /// Instantiate the prefetcher.
    pub fn build(&self) -> Box<dyn Prefetcher> {
        match self {
            PrefetcherKind::None => Box::new(NoPrefetch),
            PrefetcherKind::NextLine => Box::new(NextLine::new(4)),
            PrefetcherKind::Stride => Box::new(StridePrefetcher::new(4)),
            PrefetcherKind::Sms => Box::<Sms>::default(),
            PrefetcherKind::Bop => Box::<Bop>::default(),
            PrefetcherKind::Sandbox => Box::<Sandbox>::default(),
            PrefetcherKind::Vldp => Box::<Vldp>::default(),
            PrefetcherKind::Ghb => Box::<Ghb>::default(),
            PrefetcherKind::Isb => Box::<Isb>::default(),
            PrefetcherKind::DsPatch => Box::<DsPatch>::default(),
            PrefetcherKind::Bingo => Box::<Bingo>::default(),
            PrefetcherKind::BingoAtLlc => {
                Box::new(PlacedLow::new(Bingo::default(), pmp_types::CacheLevel::Llc))
            }
            PrefetcherKind::SppPpf => Box::<SppPpf>::default(),
            PrefetcherKind::Pythia => Box::<Pythia>::default(),
            PrefetcherKind::Pmp => Box::new(Pmp::new(PmpConfig::default())),
            PrefetcherKind::PmpLimit => Box::new(Pmp::new(PmpConfig::pmp_limit())),
            PrefetcherKind::PmpXp => Box::new(Pmp::new(PmpConfig::cross_page())),
            PrefetcherKind::PmpAdaptive => Box::new(Pmp::new(PmpConfig::adaptive())),
            PrefetcherKind::DesignB(ways) => Box::new(DesignB::new(DesignBConfig {
                ways: *ways,
                ..DesignBConfig::default()
            })),
            PrefetcherKind::PmpCustom(cfg) => Box::new(Pmp::new((**cfg).clone())),
            PrefetcherKind::FaultyPanicAfter(n) => Box::new(PanicAfter { remaining: *n }),
        }
    }

    /// Pre-flight validation: parameterised kinds whose parameters
    /// would panic deep inside `build()` or the prefetcher itself are
    /// rejected here with a diagnosis instead.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::InvalidConfig`] naming the kind and the
    /// offending parameter.
    pub fn validate(&self) -> Result<(), HarnessError> {
        match self {
            PrefetcherKind::DesignB(ways) => {
                // Table VIII sweeps up to 512 ways; beyond 1024 the
                // config is a typo, not an experiment.
                if *ways == 0 || *ways > 1024 {
                    return Err(HarnessError::invalid(
                        "PrefetcherKind::DesignB.ways",
                        format!("associativity must be in 1..=1024, got {ways}"),
                    ));
                }
                Ok(())
            }
            PrefetcherKind::PmpCustom(cfg) => {
                let bits: [(&str, u32); 4] = [
                    ("trigger_offset_bits", cfg.trigger_offset_bits),
                    ("pc_index_bits", cfg.pc_index_bits),
                    ("opt_counter_bits", cfg.opt_counter_bits),
                    ("ppt_counter_bits", cfg.ppt_counter_bits),
                ];
                for (field, value) in bits {
                    if value == 0 || value > 16 {
                        return Err(HarnessError::invalid(
                            format!("PrefetcherKind::PmpCustom.{field}"),
                            format!("width must be in 1..=16 bits, got {value}"),
                        ));
                    }
                }
                if cfg.pb_entries == 0 {
                    return Err(HarnessError::invalid(
                        "PrefetcherKind::PmpCustom.pb_entries",
                        "prefetch buffer needs at least one entry",
                    ));
                }
                if cfg.monitoring_range == 0 {
                    return Err(HarnessError::invalid(
                        "PrefetcherKind::PmpCustom.monitoring_range",
                        "monitoring range must be non-zero",
                    ));
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Display label used in experiment output.
    pub fn label(&self) -> String {
        match self {
            PrefetcherKind::None => "baseline".into(),
            PrefetcherKind::NextLine => "next-line".into(),
            PrefetcherKind::Stride => "ip-stride".into(),
            PrefetcherKind::Sms => "sms".into(),
            PrefetcherKind::Bop => "bop".into(),
            PrefetcherKind::Sandbox => "sandbox".into(),
            PrefetcherKind::Vldp => "vldp".into(),
            PrefetcherKind::Ghb => "ghb".into(),
            PrefetcherKind::Isb => "isb".into(),
            PrefetcherKind::DsPatch => "dspatch".into(),
            PrefetcherKind::Bingo => "bingo".into(),
            PrefetcherKind::BingoAtLlc => "bingo@llc".into(),
            PrefetcherKind::SppPpf => "spp-ppf".into(),
            PrefetcherKind::Pythia => "pythia".into(),
            PrefetcherKind::Pmp => "pmp".into(),
            PrefetcherKind::PmpLimit => "pmp-limit".into(),
            PrefetcherKind::PmpXp => "pmp-xp".into(),
            PrefetcherKind::PmpAdaptive => "pmp-adaptive".into(),
            PrefetcherKind::DesignB(w) => format!("design-b/{w}w"),
            PrefetcherKind::PmpCustom(_) => "pmp-custom".into(),
            PrefetcherKind::FaultyPanicAfter(n) => format!("faulty-panic/{n}"),
        }
    }

    /// Parse a display label back into a kind (CLI convenience; the
    /// parameterised kinds — custom configs, fault mocks — are not
    /// addressable by label).
    pub fn from_label(label: &str) -> Option<PrefetcherKind> {
        Some(match label {
            "baseline" | "none" => PrefetcherKind::None,
            "next-line" => PrefetcherKind::NextLine,
            "ip-stride" | "stride" => PrefetcherKind::Stride,
            "sms" => PrefetcherKind::Sms,
            "bop" => PrefetcherKind::Bop,
            "sandbox" => PrefetcherKind::Sandbox,
            "vldp" => PrefetcherKind::Vldp,
            "ghb" => PrefetcherKind::Ghb,
            "isb" => PrefetcherKind::Isb,
            "dspatch" => PrefetcherKind::DsPatch,
            "bingo" => PrefetcherKind::Bingo,
            "bingo@llc" => PrefetcherKind::BingoAtLlc,
            "spp-ppf" | "spp" => PrefetcherKind::SppPpf,
            "pythia" => PrefetcherKind::Pythia,
            "pmp" => PrefetcherKind::Pmp,
            "pmp-limit" => PrefetcherKind::PmpLimit,
            "pmp-xp" => PrefetcherKind::PmpXp,
            "pmp-adaptive" => PrefetcherKind::PmpAdaptive,
            _ => return None,
        })
    }
}

/// The fault-injection mock behind [`PrefetcherKind::FaultyPanicAfter`].
struct PanicAfter {
    remaining: u64,
}

impl Introspect for PanicAfter {}

impl Prefetcher for PanicAfter {
    fn name(&self) -> &'static str {
        "faulty-panic"
    }

    fn on_access(&mut self, _info: &AccessInfo, _out: &mut Vec<PrefetchRequest>) {
        if self.remaining == 0 {
            panic!("injected fault: prefetcher panicked on schedule");
        }
        self.remaining -= 1;
    }

    fn storage_bits(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_build() {
        let kinds = [
            PrefetcherKind::None,
            PrefetcherKind::NextLine,
            PrefetcherKind::Stride,
            PrefetcherKind::Sms,
            PrefetcherKind::Bop,
            PrefetcherKind::Sandbox,
            PrefetcherKind::Vldp,
            PrefetcherKind::Ghb,
            PrefetcherKind::Isb,
            PrefetcherKind::DsPatch,
            PrefetcherKind::Bingo,
            PrefetcherKind::BingoAtLlc,
            PrefetcherKind::SppPpf,
            PrefetcherKind::Pythia,
            PrefetcherKind::Pmp,
            PrefetcherKind::PmpLimit,
            PrefetcherKind::PmpXp,
            PrefetcherKind::PmpAdaptive,
            PrefetcherKind::DesignB(8),
            PrefetcherKind::PmpCustom(Box::default()),
            PrefetcherKind::FaultyPanicAfter(10),
        ];
        for k in kinds {
            let p = k.build();
            assert!(!p.name().is_empty());
            assert!(!k.label().is_empty());
            k.validate().unwrap_or_else(|e| panic!("{} must validate: {e}", k.label()));
        }
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        assert!(PrefetcherKind::DesignB(0).validate().is_err());
        assert!(PrefetcherKind::DesignB(4096).validate().is_err());
        assert!(PrefetcherKind::DesignB(512).validate().is_ok(), "Table VIII's largest point");
        let cfg = PmpConfig { opt_counter_bits: 0, ..PmpConfig::default() };
        assert!(PrefetcherKind::PmpCustom(Box::new(cfg)).validate().is_err());
        let cfg = PmpConfig { pb_entries: 0, ..PmpConfig::default() };
        assert!(PrefetcherKind::PmpCustom(Box::new(cfg)).validate().is_err());
    }

    #[test]
    fn faulty_prefetcher_panics_on_schedule() {
        use pmp_types::{Addr, MemAccess, Pc};
        let mut p = PrefetcherKind::FaultyPanicAfter(2).build();
        let info = AccessInfo {
            access: MemAccess::load(Pc(0x400), Addr(0x1000)),
            hit: false,
            cycle: 0,
            pq_free: 8,
        };
        let mut out = Vec::new();
        p.on_access(&info, &mut out); // 1st: fine
        p.on_access(&info, &mut out); // 2nd: fine
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.on_access(&info, &mut out)
        }));
        assert!(boom.is_err(), "3rd access must panic");
    }

    #[test]
    fn paper_five_order() {
        let five = PrefetcherKind::paper_five();
        assert_eq!(five.len(), 5);
        assert_eq!(five[4].label(), "pmp");
    }
}
