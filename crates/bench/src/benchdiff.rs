//! Comparing `BENCH_*.json` trajectory files for regressions.
//!
//! Both emitters in this repo (`BENCH_sim.json` from `sim_throughput`,
//! `BENCH_sweep.json` from the sweep telemetry) are line-oriented,
//! serde-free JSON whose throughput metrics are named `ops_per_sec` /
//! `cells_per_sec` and whose entries are labelled by a preceding
//! `"name"` field. This module extracts those `(label, metric, value)`
//! triples from two files and classifies each shared metric as
//! regressed, improved, or steady against a relative threshold —
//! higher is always better for the extracted metrics, so a regression
//! is `new < old * (1 - threshold)`.
//!
//! The parser deliberately reads only what the comparison needs: a
//! full JSON parser would be more code than the rest of the harness's
//! serialization combined, and both producers are in-repo.

use std::fmt::Write as _;

/// Metric field names worth gating on (throughputs: higher is better).
const METRIC_KEYS: [&str; 2] = ["ops_per_sec", "cells_per_sec"];

/// One extracted throughput sample: `label` is the nearest preceding
/// `"name"` (empty for top-level aggregates).
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// `label/field` identity, e.g. `"demand_walk/ops_per_sec"`.
    pub key: String,
    /// The measured value.
    pub value: f64,
}

/// Extract `"key": number` for `field` from a single line, requiring
/// an exact field name (so `ops_per_sec` does not match
/// `baseline_ops_per_sec`).
fn exact_field(line: &str, field: &str) -> Option<f64> {
    let pat = format!("\"{field}\":");
    let mut from = 0;
    while let Some(rel) = line[from..].find(&pat) {
        let at = from + rel;
        // Reject a longer field name ending in ours: the byte before
        // the opening quote must not be part of an identifier.
        let exact = at == 0 || !line.as_bytes()[at - 1].is_ascii_alphanumeric() && line.as_bytes()[at - 1] != b'_';
        if exact {
            let tail = line[at + pat.len()..].trim_start();
            let num: String = tail
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == 'E' || *c == '+')
                .collect();
            return num.parse().ok();
        }
        from = at + pat.len();
    }
    None
}

/// The nearest `"name": "..."` on this line, if any.
fn name_field(line: &str) -> Option<&str> {
    let pat = "\"name\": \"";
    let start = line.find(pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

/// Pull every labelled throughput metric out of a `BENCH_*.json` body.
pub fn extract_metrics(body: &str) -> Vec<Metric> {
    let mut out = Vec::new();
    let mut label = String::new();
    for line in body.lines() {
        if let Some(name) = name_field(line) {
            label = name.to_string();
        }
        for field in METRIC_KEYS {
            if let Some(value) = exact_field(line, field) {
                let key = if label.is_empty() {
                    field.to_string()
                } else {
                    format!("{label}/{field}")
                };
                out.push(Metric { key, value });
            }
        }
    }
    out
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct DiffLine {
    /// `label/field` identity.
    pub key: String,
    /// Baseline value.
    pub old: f64,
    /// Current value.
    pub new: f64,
    /// `new / old` (∞ when the baseline is 0).
    pub ratio: f64,
    /// Past the regression threshold.
    pub regressed: bool,
}

/// Full comparison of two `BENCH_*.json` bodies.
#[derive(Debug, Default)]
pub struct BenchDiff {
    /// Metrics present in both files.
    pub compared: Vec<DiffLine>,
    /// Keys only in the baseline (removed by the new run).
    pub removed: Vec<String>,
    /// Keys only in the new file.
    pub added: Vec<String>,
}

impl BenchDiff {
    /// Compare `old_body` to `new_body` with a relative regression
    /// `threshold` (0.10 = flag a >10% throughput drop).
    pub fn compare(old_body: &str, new_body: &str, threshold: f64) -> BenchDiff {
        let old = extract_metrics(old_body);
        let new = extract_metrics(new_body);
        let mut diff = BenchDiff::default();
        for o in &old {
            match new.iter().find(|n| n.key == o.key) {
                Some(n) => {
                    let ratio = if o.value == 0.0 { f64::INFINITY } else { n.value / o.value };
                    diff.compared.push(DiffLine {
                        key: o.key.clone(),
                        old: o.value,
                        new: n.value,
                        ratio,
                        regressed: ratio < 1.0 - threshold,
                    });
                }
                None => diff.removed.push(o.key.clone()),
            }
        }
        for n in &new {
            if !old.iter().any(|o| o.key == n.key) {
                diff.added.push(n.key.clone());
            }
        }
        diff
    }

    /// Any metric past the threshold (a *removed* metric also counts —
    /// silently dropping a gated number must not read as a pass).
    pub fn has_regression(&self) -> bool {
        !self.removed.is_empty() || self.compared.iter().any(|d| d.regressed)
    }

    /// Human-readable comparison table.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for d in &self.compared {
            let verdict = if d.regressed {
                "REGRESSED"
            } else if d.ratio > 1.05 {
                "improved"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "{:<40} {:>14.1} -> {:>14.1}  ({:>6.3}x)  {verdict}",
                d.key, d.old, d.new, d.ratio
            );
        }
        for key in &self.removed {
            let _ = writeln!(out, "{key:<40} present in baseline, MISSING in new run");
        }
        for key in &self.added {
            let _ = writeln!(out, "{key:<40} new metric (no baseline)");
        }
        if self.compared.is_empty() && self.removed.is_empty() {
            let _ = writeln!(out, "no comparable metrics found");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIM_STYLE: &str = r#"{
  "bench": "sim_throughput",
  "workloads": [
    {"name": "demand_walk", "ns_per_op": 60.0, "ops_per_sec": 16666667, "baseline_ops_per_sec": 10718114, "speedup": 1.555},
    {"name": "system_stream", "ns_per_op": 250.0, "ops_per_sec": 4000000, "baseline_ops_per_sec": 2722570, "speedup": 1.469}
  ]
}"#;

    const SWEEP_STYLE: &str = r#"{
  "bench": "sweep",
  "cells": {"done": 750, "executed": 750, "resumed": 0},
  "aggregate": {"instructions": 90000000, "ops_per_sec": 5000000, "cells_per_sec": 6.2, "cell_wall_ms": {"p99_ms": 512}},
  "prefetchers": [
    {"name": "pmp", "wall_ms": {"cells": 125, "mean_ms": 140.0}}
  ]
}"#;

    #[test]
    fn extracts_exact_fields_only() {
        let metrics = extract_metrics(SIM_STYLE);
        // baseline_ops_per_sec must NOT match; two workloads → two
        // metrics.
        assert_eq!(metrics.len(), 2);
        assert_eq!(metrics[0].key, "demand_walk/ops_per_sec");
        assert!((metrics[0].value - 16_666_667.0).abs() < 1.0);
        assert_eq!(metrics[1].key, "system_stream/ops_per_sec");
    }

    #[test]
    fn extracts_sweep_aggregates_without_label() {
        let metrics = extract_metrics(SWEEP_STYLE);
        assert_eq!(metrics.len(), 2);
        assert_eq!(metrics[0].key, "ops_per_sec");
        assert_eq!(metrics[1].key, "cells_per_sec");
        assert!((metrics[1].value - 6.2).abs() < 1e-9);
    }

    #[test]
    fn flags_regressions_past_threshold_only() {
        let new = SIM_STYLE
            .replace("\"ops_per_sec\": 16666667", "\"ops_per_sec\": 8000000") // -52%
            .replace("\"ops_per_sec\": 4000000", "\"ops_per_sec\": 3900000"); // -2.5%
        let diff = BenchDiff::compare(SIM_STYLE, &new, 0.10);
        assert!(diff.has_regression());
        assert_eq!(diff.compared.len(), 2);
        assert!(diff.compared[0].regressed, "52% drop past a 10% threshold");
        assert!(!diff.compared[1].regressed, "2.5% drop within a 10% threshold");
        // A generous threshold passes both.
        assert!(!BenchDiff::compare(SIM_STYLE, &new, 0.60).has_regression());
    }

    #[test]
    fn improvement_is_not_a_regression() {
        let new = SIM_STYLE.replace("\"ops_per_sec\": 16666667", "\"ops_per_sec\": 20000000");
        let diff = BenchDiff::compare(SIM_STYLE, &new, 0.10);
        assert!(!diff.has_regression());
        assert!(diff.report().contains("improved"), "{}", diff.report());
    }

    #[test]
    fn missing_metric_counts_as_regression() {
        let diff = BenchDiff::compare(SIM_STYLE, SWEEP_STYLE, 0.10);
        assert!(diff.has_regression(), "dropped workload metrics must not pass silently");
        assert!(!diff.removed.is_empty());
        assert!(!diff.added.is_empty());
    }

    #[test]
    fn cross_format_self_compare_is_clean() {
        for body in [SIM_STYLE, SWEEP_STYLE] {
            let diff = BenchDiff::compare(body, body, 0.10);
            assert!(!diff.has_regression());
            assert!(diff.compared.iter().all(|d| (d.ratio - 1.0).abs() < 1e-12));
        }
    }
}
