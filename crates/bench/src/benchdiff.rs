//! Comparing `BENCH_*.json` trajectory files for regressions.
//!
//! Both emitters in this repo (`BENCH_sim.json` from `sim_throughput`,
//! `BENCH_sweep.json` from the sweep telemetry) are line-oriented,
//! serde-free JSON whose throughput metrics are named `ops_per_sec` /
//! `cells_per_sec` and whose entries are labelled by a preceding
//! `"name"` field. This module extracts those `(label, metric, value)`
//! triples from two files and classifies each shared metric as
//! regressed, improved, or steady against a relative threshold —
//! higher is always better for the extracted metrics, so a regression
//! is `new < old * (1 - threshold)`.
//!
//! The parser deliberately reads only what the comparison needs: a
//! full JSON parser would be more code than the rest of the harness's
//! serialization combined, and both producers are in-repo.

use std::fmt::Write as _;

/// Metric field names worth gating on (throughputs: higher is better).
const METRIC_KEYS: [&str; 2] = ["ops_per_sec", "cells_per_sec"];

/// Decision-quality field names (ratios in [0,1] plus IPC: higher is
/// better), as emitted by `pf_attrib` — the aggregate block and every
/// per-origin row. Used with [`MetricSet::Decision`].
const DECISION_KEYS: [&str; 4] = ["ipc", "accuracy", "timeliness", "coverage"];

/// Which metric family to extract and compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricSet {
    /// Throughput fields from `BENCH_*.json` (`ops_per_sec`,
    /// `cells_per_sec`) — the perf-trajectory gate.
    #[default]
    Throughput,
    /// Decision-quality fields from `pf_attrib.json` (`ipc`,
    /// `accuracy`, `timeliness`, `coverage`), including per-origin
    /// rows labelled by their `"origin"` field. Origins churn as the
    /// prefetcher learns, so this set is meant for `--report-only`
    /// visibility, not a hard gate.
    Decision,
}

impl MetricSet {
    fn keys(self) -> &'static [&'static str] {
        match self {
            MetricSet::Throughput => &METRIC_KEYS,
            MetricSet::Decision => &DECISION_KEYS,
        }
    }
}

/// One extracted throughput sample: `label` is the nearest preceding
/// `"name"` (empty for top-level aggregates).
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// `label/field` identity, e.g. `"demand_walk/ops_per_sec"`.
    pub key: String,
    /// The measured value.
    pub value: f64,
}

/// Extract `"key": number` for `field` from a single line, requiring
/// an exact field name (so `ops_per_sec` does not match
/// `baseline_ops_per_sec`).
fn exact_field(line: &str, field: &str) -> Option<f64> {
    let pat = format!("\"{field}\":");
    let mut from = 0;
    while let Some(rel) = line[from..].find(&pat) {
        let at = from + rel;
        // Reject a longer field name ending in ours: the byte before
        // the opening quote must not be part of an identifier.
        let exact = at == 0 || !line.as_bytes()[at - 1].is_ascii_alphanumeric() && line.as_bytes()[at - 1] != b'_';
        if exact {
            let tail = line[at + pat.len()..].trim_start();
            let num: String = tail
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == 'E' || *c == '+')
                .collect();
            return num.parse().ok();
        }
        from = at + pat.len();
    }
    None
}

/// The nearest `"name": "..."` (or, for attribution documents,
/// `"origin": "..."`) on this line, if any.
fn name_field(line: &str) -> Option<&str> {
    for pat in ["\"name\": \"", "\"origin\": \""] {
        if let Some(at) = line.find(pat) {
            let start = at + pat.len();
            let end = line[start..].find('"')?;
            return Some(&line[start..start + end]);
        }
    }
    None
}

/// Pull every labelled throughput metric out of a `BENCH_*.json` body.
pub fn extract_metrics(body: &str) -> Vec<Metric> {
    extract_metrics_for(body, MetricSet::Throughput)
}

/// Pull every labelled metric of `set` out of a JSON body.
pub fn extract_metrics_for(body: &str, set: MetricSet) -> Vec<Metric> {
    let mut out = Vec::new();
    let mut label = String::new();
    for line in body.lines() {
        if let Some(name) = name_field(line) {
            label = name.to_string();
        }
        for &field in set.keys() {
            if let Some(value) = exact_field(line, field) {
                let key = if label.is_empty() {
                    field.to_string()
                } else {
                    format!("{label}/{field}")
                };
                out.push(Metric { key, value });
            }
        }
    }
    out
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct DiffLine {
    /// `label/field` identity.
    pub key: String,
    /// Baseline value.
    pub old: f64,
    /// Current value.
    pub new: f64,
    /// `new / old` (∞ when the baseline is 0).
    pub ratio: f64,
    /// Past the regression threshold.
    pub regressed: bool,
}

/// Full comparison of two `BENCH_*.json` bodies.
#[derive(Debug, Default)]
pub struct BenchDiff {
    /// Metrics present in both files.
    pub compared: Vec<DiffLine>,
    /// Keys only in the baseline (removed by the new run).
    pub removed: Vec<String>,
    /// Keys only in the new file.
    pub added: Vec<String>,
}

impl BenchDiff {
    /// Compare `old_body` to `new_body` with a relative regression
    /// `threshold` (0.10 = flag a >10% throughput drop).
    pub fn compare(old_body: &str, new_body: &str, threshold: f64) -> BenchDiff {
        Self::compare_for(old_body, new_body, threshold, MetricSet::Throughput)
    }

    /// [`BenchDiff::compare`] over an explicit [`MetricSet`].
    pub fn compare_for(
        old_body: &str,
        new_body: &str,
        threshold: f64,
        set: MetricSet,
    ) -> BenchDiff {
        let old = extract_metrics_for(old_body, set);
        let new = extract_metrics_for(new_body, set);
        let mut diff = BenchDiff::default();
        for o in &old {
            match new.iter().find(|n| n.key == o.key) {
                Some(n) => {
                    let ratio = if o.value == 0.0 { f64::INFINITY } else { n.value / o.value };
                    diff.compared.push(DiffLine {
                        key: o.key.clone(),
                        old: o.value,
                        new: n.value,
                        ratio,
                        regressed: ratio < 1.0 - threshold,
                    });
                }
                None => diff.removed.push(o.key.clone()),
            }
        }
        for n in &new {
            if !old.iter().any(|o| o.key == n.key) {
                diff.added.push(n.key.clone());
            }
        }
        diff
    }

    /// Any metric past the threshold (a *removed* metric also counts —
    /// silently dropping a gated number must not read as a pass).
    pub fn has_regression(&self) -> bool {
        !self.removed.is_empty() || self.compared.iter().any(|d| d.regressed)
    }

    /// Human-readable comparison table.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for d in &self.compared {
            let verdict = if d.regressed {
                "REGRESSED"
            } else if d.ratio > 1.05 {
                "improved"
            } else {
                "ok"
            };
            // Throughputs are large integers, decision metrics are
            // small ratios — pick a precision that keeps both legible.
            let prec = if d.old.abs() < 100.0 && d.new.abs() < 100.0 { 4 } else { 1 };
            let _ = writeln!(
                out,
                "{:<40} {:>14.prec$} -> {:>14.prec$}  ({:>6.3}x)  {verdict}",
                d.key, d.old, d.new, d.ratio
            );
        }
        for key in &self.removed {
            let _ = writeln!(out, "{key:<40} present in baseline, MISSING in new run");
        }
        for key in &self.added {
            let _ = writeln!(out, "{key:<40} new metric (no baseline)");
        }
        if self.compared.is_empty() && self.removed.is_empty() {
            let _ = writeln!(out, "no comparable metrics found");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIM_STYLE: &str = r#"{
  "bench": "sim_throughput",
  "workloads": [
    {"name": "demand_walk", "ns_per_op": 60.0, "ops_per_sec": 16666667, "baseline_ops_per_sec": 10718114, "speedup": 1.555},
    {"name": "system_stream", "ns_per_op": 250.0, "ops_per_sec": 4000000, "baseline_ops_per_sec": 2722570, "speedup": 1.469}
  ]
}"#;

    const SWEEP_STYLE: &str = r#"{
  "bench": "sweep",
  "cells": {"done": 750, "executed": 750, "resumed": 0},
  "aggregate": {"instructions": 90000000, "ops_per_sec": 5000000, "cells_per_sec": 6.2, "cell_wall_ms": {"p99_ms": 512}},
  "prefetchers": [
    {"name": "pmp", "wall_ms": {"cells": 125, "mean_ms": 140.0}}
  ]
}"#;

    #[test]
    fn extracts_exact_fields_only() {
        let metrics = extract_metrics(SIM_STYLE);
        // baseline_ops_per_sec must NOT match; two workloads → two
        // metrics.
        assert_eq!(metrics.len(), 2);
        assert_eq!(metrics[0].key, "demand_walk/ops_per_sec");
        assert!((metrics[0].value - 16_666_667.0).abs() < 1.0);
        assert_eq!(metrics[1].key, "system_stream/ops_per_sec");
    }

    #[test]
    fn extracts_sweep_aggregates_without_label() {
        let metrics = extract_metrics(SWEEP_STYLE);
        assert_eq!(metrics.len(), 2);
        assert_eq!(metrics[0].key, "ops_per_sec");
        assert_eq!(metrics[1].key, "cells_per_sec");
        assert!((metrics[1].value - 6.2).abs() < 1e-9);
    }

    #[test]
    fn flags_regressions_past_threshold_only() {
        let new = SIM_STYLE
            .replace("\"ops_per_sec\": 16666667", "\"ops_per_sec\": 8000000") // -52%
            .replace("\"ops_per_sec\": 4000000", "\"ops_per_sec\": 3900000"); // -2.5%
        let diff = BenchDiff::compare(SIM_STYLE, &new, 0.10);
        assert!(diff.has_regression());
        assert_eq!(diff.compared.len(), 2);
        assert!(diff.compared[0].regressed, "52% drop past a 10% threshold");
        assert!(!diff.compared[1].regressed, "2.5% drop within a 10% threshold");
        // A generous threshold passes both.
        assert!(!BenchDiff::compare(SIM_STYLE, &new, 0.60).has_regression());
    }

    #[test]
    fn improvement_is_not_a_regression() {
        let new = SIM_STYLE.replace("\"ops_per_sec\": 16666667", "\"ops_per_sec\": 20000000");
        let diff = BenchDiff::compare(SIM_STYLE, &new, 0.10);
        assert!(!diff.has_regression());
        assert!(diff.report().contains("improved"), "{}", diff.report());
    }

    #[test]
    fn missing_metric_counts_as_regression() {
        let diff = BenchDiff::compare(SIM_STYLE, SWEEP_STYLE, 0.10);
        assert!(diff.has_regression(), "dropped workload metrics must not pass silently");
        assert!(!diff.removed.is_empty());
        assert!(!diff.added.is_empty());
    }

    const ATTRIB_STYLE: &str = r#"{
"trace": "spec06.stream_1", "scale": "Small", "prefetcher": "pmp", "ipc": 3.085117,
"attribution": {
  "pf_issued": 1827,
  "accuracy": 0.967021,
  "timeliness": 0.984971,
  "origins": [
    {"origin": "pmp/merged[0]@t0 g3", "family": "pmp", "issued": 1512, "accuracy": 0.960979, "timeliness": 0.984171},
    {"origin": "pmp/merged[0]@t0 g2", "family": "pmp", "issued": 315, "accuracy": 1.000000, "timeliness": 0.989170}
  ]
}
}"#;

    #[test]
    fn decision_set_extracts_aggregate_and_per_origin_rows() {
        // Throughput set sees nothing in an attribution document.
        assert!(extract_metrics(ATTRIB_STYLE).is_empty());
        let metrics = extract_metrics_for(ATTRIB_STYLE, MetricSet::Decision);
        let keys: Vec<&str> = metrics.iter().map(|m| m.key.as_str()).collect();
        assert_eq!(
            keys,
            [
                "ipc",
                "accuracy",
                "timeliness",
                "pmp/merged[0]@t0 g3/accuracy",
                "pmp/merged[0]@t0 g3/timeliness",
                "pmp/merged[0]@t0 g2/accuracy",
                "pmp/merged[0]@t0 g2/timeliness",
            ]
        );
        assert!((metrics[1].value - 0.967021).abs() < 1e-9);
    }

    #[test]
    fn decision_set_flags_accuracy_drop() {
        let new = ATTRIB_STYLE.replace("\"accuracy\": 0.967021", "\"accuracy\": 0.50");
        let diff = BenchDiff::compare_for(ATTRIB_STYLE, &new, 0.10, MetricSet::Decision);
        assert!(diff.has_regression());
        assert!(
            diff.compared.iter().any(|d| d.key == "accuracy" && d.regressed),
            "{}",
            diff.report()
        );
        // Per-origin rows untouched → not regressed.
        assert!(diff
            .compared
            .iter()
            .filter(|d| d.key.starts_with("pmp/"))
            .all(|d| !d.regressed));
        // Self-compare is clean.
        assert!(!BenchDiff::compare_for(ATTRIB_STYLE, ATTRIB_STYLE, 0.10, MetricSet::Decision)
            .has_regression());
    }

    #[test]
    fn cross_format_self_compare_is_clean() {
        for body in [SIM_STYLE, SWEEP_STYLE] {
            let diff = BenchDiff::compare(body, body, 0.10);
            assert!(!diff.has_regression());
            assert!(diff.compared.iter().all(|d| (d.ratio - 1.0).abs() < 1e-12));
        }
    }
}
