//! `core_kernels` — the counter-vector hot-path kernels, SWAR vs scalar.
//!
//! Measures the PMP core's merge / halve / extract kernels at the paper
//! defaults (64 offsets × 5-bit counters) twice in the same run: once
//! through the bit-parallel (SWAR) `CounterVector`, and once through a
//! self-contained scalar reference replicating the pre-rework
//! `Vec<u16>` element-at-a-time implementation. Because both sides are
//! measured on the same machine in the same process, the reported
//! `speedup` is machine-independent in a way the cross-run BENCH
//! baselines are not — it is the acceptance gate for the SWAR rework
//! (target: ≥2× on the merge and extract kernels).
//!
//! Emits `results/BENCH_core.json` (serde-free, bench_diff-compatible:
//! each workload line carries `name` + `ops_per_sec`).
//!
//! Usage: `cargo run --release --bin core_kernels [-- OUT.json]`

use pmp_bench::microbench::{bench_function, black_box};
use pmp_core::{CounterVector, ExtractionScheme};
use pmp_types::{BitPattern, CacheLevel, PrefetchPattern, Rng64};
use std::fmt::Write as _;

const LEN: u32 = 64;
const BITS: u32 = 5;

/// The pre-SWAR counter vector, copied verbatim from the old
/// `pmp-core` implementation so the two sides run the exact same
/// algorithmic workload.
struct ScalarCv {
    counters: Vec<u16>,
    cap: u16,
}

impl ScalarCv {
    fn new(len: u32, bits: u32) -> Self {
        ScalarCv { counters: vec![0; len as usize], cap: (1u16 << bits) - 1 }
    }

    fn merge(&mut self, anchored: BitPattern) -> bool {
        for off in anchored.iter_set() {
            self.counters[usize::from(off)] += 1;
        }
        if self.counters[0] > self.cap {
            for c in &mut self.counters {
                *c /= 2;
            }
            return true;
        }
        false
    }

    fn extract(&self, scheme: &ExtractionScheme) -> PrefetchPattern {
        let len = self.counters.len() as u32;
        let mut out = PrefetchPattern::new(len);
        let time = self.counters[0];
        if time == 0 {
            return out;
        }
        let denom: u32 = self.counters[1..].iter().map(|&c| u32::from(c)).sum();
        for i in 1..len as u8 {
            let c = self.counters[usize::from(i)];
            let level = match *scheme {
                ExtractionScheme::AccessNumber { t_l1d, t_l2c } => {
                    if c >= t_l1d {
                        Some(CacheLevel::L1D)
                    } else if c >= t_l2c {
                        Some(CacheLevel::L2C)
                    } else {
                        None
                    }
                }
                ExtractionScheme::AccessRatio { t_l1d, t_l2c } => {
                    let r = if denom == 0 { 0.0 } else { f64::from(c) / f64::from(denom) };
                    if r >= t_l1d {
                        Some(CacheLevel::L1D)
                    } else if r >= t_l2c {
                        Some(CacheLevel::L2C)
                    } else {
                        None
                    }
                }
                ExtractionScheme::AccessFrequency { t_l1d, t_l2c } => {
                    let f = f64::from(c) / f64::from(time);
                    if f >= t_l1d {
                        Some(CacheLevel::L1D)
                    } else if f >= t_l2c {
                        Some(CacheLevel::L2C)
                    } else {
                        None
                    }
                }
            };
            if let Some(l) = level {
                out.set(i, l);
            }
        }
        out
    }
}

/// A mixed training workload: mostly sparse patterns (2-10 offsets)
/// with occasional dense streams — the distribution the OPT sees on
/// real traces. Bit 0 is always set (the trigger).
fn training_patterns(n: usize, seed: u64) -> Vec<BitPattern> {
    let mut rng = Rng64::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut bits = rng.next_u64();
            match rng.gen_range(0..8u32) {
                0 => {} // dense-ish (~32 offsets)
                1..=5 => bits &= rng.next_u64() & rng.next_u64(), // sparse (~8)
                _ => bits = u64::MAX, // full stream
            }
            BitPattern::from_bits(bits | 1, LEN)
        })
        .collect()
}

/// A trained 64×5 vector with a realistic mix of always/sometimes/never
/// offsets: a recurring ~12-offset true pattern (high counters, most
/// qualify for L1D), per-merge dropout and sparse noise (a band of
/// L2C-only and below-threshold offsets), and plenty of never-seen
/// offsets — the shape OPT entries actually take on real traces.
fn trained_pair() -> (CounterVector, ScalarCv) {
    let mut rng = Rng64::seed_from_u64(0xBEEF);
    let mut true_pattern = 1u64;
    for _ in 0..12 {
        true_pattern |= 1u64 << rng.gen_range(0..64u32);
    }
    let mut swar = CounterVector::new(LEN, BITS);
    let mut scalar = ScalarCv::new(LEN, BITS);
    for _ in 0..40 {
        let dropout = rng.next_u64() | rng.next_u64(); // keep ~3/4
        let noise = rng.next_u64() & rng.next_u64() & rng.next_u64() & rng.next_u64();
        let p = BitPattern::from_bits(((true_pattern & dropout) | noise) | 1, LEN);
        swar.merge(p);
        scalar.merge(p);
    }
    (swar, scalar)
}

struct Kernel {
    name: &'static str,
    swar_ns: f64,
    scalar_ns: f64,
}

impl Kernel {
    fn speedup(&self) -> f64 {
        self.scalar_ns / self.swar_ns
    }
}

/// merge: the OPT training op on the mixed workload.
fn bench_merge() -> Kernel {
    let patterns = training_patterns(256, 0x5EED);
    let mut swar = CounterVector::new(LEN, BITS);
    let mut i = 0usize;
    let m_swar = bench_function("core_kernels/merge_swar", |b| {
        b.iter(|| {
            let halved = swar.merge(patterns[i & 255]);
            i += 1;
            black_box(halved)
        });
    });
    let mut scalar = ScalarCv::new(LEN, BITS);
    let mut i = 0usize;
    let m_scalar = bench_function("core_kernels/merge_scalar", |b| {
        b.iter(|| {
            let halved = scalar.merge(patterns[i & 255]);
            i += 1;
            black_box(halved)
        });
    });
    Kernel { name: "merge", swar_ns: m_swar.ns_per_iter, scalar_ns: m_scalar.ns_per_iter }
}

/// halve: dense stream merges at saturation — every 16th merge ages the
/// whole vector, so this is the halving-dominated steady state.
fn bench_halve() -> Kernel {
    let stream = BitPattern::from_bits(u64::MAX, LEN);
    let mut swar = CounterVector::new(LEN, BITS);
    let m_swar = bench_function("core_kernels/halve_swar", |b| {
        b.iter(|| black_box(swar.merge(stream)));
    });
    let mut scalar = ScalarCv::new(LEN, BITS);
    let m_scalar = bench_function("core_kernels/halve_scalar", |b| {
        b.iter(|| black_box(scalar.merge(stream)));
    });
    Kernel { name: "halve", swar_ns: m_swar.ns_per_iter, scalar_ns: m_scalar.ns_per_iter }
}

/// One extraction kernel under `scheme` on the trained vector.
fn bench_extract(name: &'static str, scheme: ExtractionScheme) -> Kernel {
    let (swar, scalar) = trained_pair();
    let check = scheme.extract(&swar);
    assert_eq!(check, scalar.extract(&scheme), "SWAR and scalar must agree before timing");
    let m_swar = bench_function("core_kernels/extract_swar", |b| {
        b.iter(|| black_box(scheme.extract(black_box(&swar))));
    });
    let m_scalar = bench_function("core_kernels/extract_scalar", |b| {
        b.iter(|| black_box(scalar.extract(black_box(&scheme))));
    });
    Kernel { name, swar_ns: m_swar.ns_per_iter, scalar_ns: m_scalar.ns_per_iter }
}

/// Serialize the measurements as the `BENCH_core.json` document.
fn to_json(kernels: &[Kernel]) -> String {
    let mut out = String::from(
        "{\n  \"bench\": \"core_kernels\",\n  \"unit\": \"ops_per_sec\",\n  \"geometry\": \"64x5bit\",\n  \"workloads\": [\n",
    );
    let mut min_speedup = f64::INFINITY;
    for (i, k) in kernels.iter().enumerate() {
        min_speedup = min_speedup.min(k.speedup());
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"ns_per_op\": {:.2}, \"ops_per_sec\": {:.0}, \
             \"scalar_ns_per_op\": {:.2}, \"scalar_ops_per_sec\": {:.0}, \
             \"speedup\": {:.3}}}{}",
            k.name,
            k.swar_ns,
            1e9 / k.swar_ns,
            k.scalar_ns,
            1e9 / k.scalar_ns,
            k.speedup(),
            if i + 1 < kernels.len() { "," } else { "" },
        );
    }
    let _ = write!(out, "  ],\n  \"min_speedup\": {min_speedup:.3}\n}}\n");
    out
}

fn main() {
    let out_path =
        std::env::args().nth(1).unwrap_or_else(|| "results/BENCH_core.json".to_string());
    let kernels = [
        bench_merge(),
        bench_halve(),
        bench_extract("extract_ane", ExtractionScheme::ane_default()),
        bench_extract("extract_are", ExtractionScheme::are_default()),
        bench_extract("extract_afe", ExtractionScheme::default()),
    ];
    for k in &kernels {
        println!(
            "{:<12} swar {:>7.2} ns/op  scalar {:>7.2} ns/op  speedup {:>5.2}x",
            k.name,
            k.swar_ns,
            k.scalar_ns,
            k.speedup(),
        );
    }
    let json = to_json(&kernels);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    std::fs::write(&out_path, &json).expect("write BENCH_core.json");
    println!("wrote {out_path}");
}
