//! Regenerates Tables III and V (storage budgets). See DESIGN.md §4.
use pmp_bench::experiments::storage;

fn main() {
    println!("{}", storage::tab3_storage());
    println!("{}", storage::tab5_overheads());
}
