//! `sim_throughput` — the simulator's ops/sec trajectory.
//!
//! Measures the memory-walk hot path (`demand_access` /
//! `prefetch_access`) and whole-system throughput, then emits
//! `BENCH_sim.json` so the numbers land in the perf trajectory and
//! future PRs can detect regressions. The `baseline_ops_per_sec`
//! fields pin the pre-optimization numbers measured on the reference
//! machine before the allocation-free hot-path rework; `speedup` is
//! current / baseline (machine-dependent — compare trends, not
//! absolutes, across hosts).
//!
//! Usage: `cargo run --release --bin sim_throughput [-- OUT.json]`
//! (default output path: `results/BENCH_sim.json`).

use pmp_bench::microbench::{bench_function, black_box};
use pmp_prefetch::{NextLine, NoPrefetch, PrefetchRequest};
use pmp_sim::hierarchy::{demand_access, prefetch_access, CoreMem, MemEvents, SharedMem};
use pmp_sim::{NullTracer, SimStats, System, SystemConfig};
use pmp_types::{Addr, CacheLevel, LineAddr, MemAccess, Pc, TraceOp};
use std::fmt::Write as _;

/// Pre-PR baselines (ns/iter on the reference machine, commit 70aaa43)
/// for each workload, in `workloads()` order. The acceptance target for
/// the hot-path rework is >= 1.3x ops/sec on the memory-walk workloads.
const BASELINE_NS_PER_OP: [f64; 4] = [
    DEMAND_WALK_BASELINE_NS,
    PREFETCH_WALK_BASELINE_NS,
    SYSTEM_STREAM_BASELINE_NS,
    SYSTEM_NEXTLINE_BASELINE_NS,
];

/// `demand_walk` pre-PR ns/op.
const DEMAND_WALK_BASELINE_NS: f64 = 93.3;
/// `prefetch_walk` pre-PR ns/op.
const PREFETCH_WALK_BASELINE_NS: f64 = 320.3;
/// `system_stream` pre-PR ns/op (20k-mem-op run, NoPrefetch).
const SYSTEM_STREAM_BASELINE_NS: f64 = 367.3;
/// `system_nextline` pre-PR ns/op (20k-mem-op run, NextLine(4)).
const SYSTEM_NEXTLINE_BASELINE_NS: f64 = 621.8;

/// One measured workload.
struct Workload {
    name: &'static str,
    ns_per_op: f64,
}

/// The demand-side memory walk: mixed hits (small working set) and
/// streaming misses, one `demand_access` per op.
fn demand_walk() -> Workload {
    let cfg = SystemConfig::single_core();
    let mut cores = vec![CoreMem::new(&cfg)];
    let mut shared = SharedMem::new(&cfg);
    let mut stats = SimStats::default();
    let mut ev = MemEvents::default();
    let mut now = 0u64;
    let mut i = 0u64;
    let m = bench_function("sim_throughput/demand_walk", |b| {
        b.iter(|| {
            let line = if i.is_multiple_of(4) { LineAddr(1_000_000 + i) } else { LineAddr(i % 64) };
            let (lat, _) = demand_access(
                line,
                true,
                now,
                0,
                &mut cores,
                &mut shared,
                &mut stats,
                &mut ev,
                &mut NullTracer,
            );
            ev.clear();
            now += 2;
            i += 1;
            black_box(lat)
        });
    });
    Workload { name: "demand_walk", ns_per_op: m.ns_per_iter }
}

/// The prefetch-side walk interleaved with demands: each op is one
/// demand plus one distance-4 L1D prefetch, so in steady state every
/// demand hits a prefetched line and every prefetch walks the full
/// admission + fill path.
fn prefetch_walk() -> Workload {
    let cfg = SystemConfig::single_core();
    let mut cores = vec![CoreMem::new(&cfg)];
    let mut shared = SharedMem::new(&cfg);
    let mut stats = SimStats::default();
    let mut ev = MemEvents::default();
    let mut now = 0u64;
    let mut i = 0u64;
    let m = bench_function("sim_throughput/prefetch_walk", |b| {
        b.iter(|| {
            let (lat, _) = demand_access(
                LineAddr(i),
                true,
                now,
                0,
                &mut cores,
                &mut shared,
                &mut stats,
                &mut ev,
                &mut NullTracer,
            );
            let out = prefetch_access(
                PrefetchRequest::new(LineAddr(i + 4), CacheLevel::L1D),
                now,
                0,
                &mut cores,
                &mut shared,
                &mut stats,
                &mut ev,
                &mut NullTracer,
            );
            ev.clear();
            now += 8;
            i += 1;
            black_box((lat, out))
        });
    });
    Workload { name: "prefetch_walk", ns_per_op: m.ns_per_iter }
}

fn stream_ops(n: u64) -> Vec<TraceOp> {
    (0..n)
        .map(|i| TraceOp::new(MemAccess::load(Pc(0x400), Addr((i * 320) % (1 << 26))), 3, false))
        .collect()
}

/// Whole-system throughput, no prefetcher: trace dispatch + core model
/// + memory walk, per mem op.
fn system_stream() -> Workload {
    let ops = stream_ops(20_000);
    let m = bench_function("sim_throughput/system_stream", |b| {
        b.iter(|| {
            let mut sys = System::new(SystemConfig::single_core(), Box::new(NoPrefetch));
            black_box(sys.run(&ops, 0).cycles)
        });
    });
    Workload { name: "system_stream", ns_per_op: m.ns_per_iter / 20_000.0 }
}

/// Whole-system throughput with an active prefetcher (adds the
/// prefetch walk and feedback delivery to every op).
fn system_nextline() -> Workload {
    let ops = stream_ops(20_000);
    let m = bench_function("sim_throughput/system_nextline", |b| {
        b.iter(|| {
            let mut sys = System::new(SystemConfig::single_core(), Box::new(NextLine::new(4)));
            black_box(sys.run(&ops, 0).cycles)
        });
    });
    Workload { name: "system_nextline", ns_per_op: m.ns_per_iter / 20_000.0 }
}

/// Serialize the measurements as the `BENCH_sim.json` document.
fn to_json(workloads: &[Workload]) -> String {
    let mut out = String::from("{\n  \"bench\": \"sim_throughput\",\n  \"unit\": \"ops_per_sec\",\n  \"workloads\": [\n");
    let mut min_speedup = f64::INFINITY;
    for (i, w) in workloads.iter().enumerate() {
        let ops = 1e9 / w.ns_per_op;
        let base_ns = BASELINE_NS_PER_OP[i];
        let base_ops = 1e9 / base_ns;
        let speedup = base_ns / w.ns_per_op;
        min_speedup = min_speedup.min(speedup);
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"ns_per_op\": {:.1}, \"ops_per_sec\": {:.0}, \
             \"baseline_ns_per_op\": {:.1}, \"baseline_ops_per_sec\": {:.0}, \
             \"speedup\": {:.3}}}{}",
            w.name,
            w.ns_per_op,
            ops,
            base_ns,
            base_ops,
            speedup,
            if i + 1 < workloads.len() { "," } else { "" },
        );
    }
    let _ = write!(out, "  ],\n  \"min_speedup\": {min_speedup:.3}\n}}\n");
    out
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/BENCH_sim.json".to_string());
    let workloads = [demand_walk(), prefetch_walk(), system_stream(), system_nextline()];
    let json = to_json(&workloads);
    for (i, w) in workloads.iter().enumerate() {
        println!(
            "{:<18} {:>9.1} ns/op  {:>12.0} ops/s  speedup vs pre-PR: {:.2}x",
            w.name,
            w.ns_per_op,
            1e9 / w.ns_per_op,
            BASELINE_NS_PER_OP[i] / w.ns_per_op,
        );
    }
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    std::fs::write(&out_path, &json).expect("write BENCH_sim.json");
    println!("wrote {out_path}");
}
