//! Runs every experiment and writes the reports under `results/`.
//! Scale via `PMP_SCALE` (tiny/small/standard/large; default standard).
//!
//! Flags:
//! * `--resume` — reuse completed cells from `results/journal.jsonl`
//!   (an interrupted run picks up where it stopped).
//! * `--fresh` — explicit form of the default: truncate the journal and
//!   recompute everything.
//! * `--no-progress` — suppress the live progress/ETA reporter (also
//!   `PMP_NO_PROGRESS=1`; progress auto-degrades to periodic plain
//!   lines when stderr is not a TTY).
//!
//! Every checked grid cell reports a telemetry span; the aggregate —
//! wall-clock, ops/sec, per-prefetcher and per-archetype latency
//! histograms, executed/resumed/failed counts, per-phase breakdown —
//! lands in `results/BENCH_sweep.json` at the end of the run (resumed
//! runs included), extending the perf trajectory `BENCH_sim.json`
//! started. Compare two of them with the `bench_diff` bin.
use pmp_bench::experiments::{ablation, headline, motivation, multicore, scale_from_env, sensitivity, storage};
use pmp_bench::progress::{ProgressMode, ProgressReporter};
use pmp_bench::{journal, telemetry, trace_pool};
use pmp_obs::SweepObserver;
use std::fs;
use std::path::Path;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let resume = args.iter().any(|a| a == "--resume");
    for a in &args {
        if a != "--resume" && a != "--fresh" && a != "--no-progress" {
            eprintln!("unknown flag {a}; expected --resume, --fresh or --no-progress");
            std::process::exit(2);
        }
    }
    let scale = scale_from_env();
    fs::create_dir_all("results").expect("create results dir");
    match journal::init_global(Path::new("results/journal.jsonl"), resume) {
        Ok(info) if resume => eprintln!(
            "journal: resumed with {} completed cells ({} corrupt lines skipped)",
            info.loaded, info.skipped
        ),
        Ok(_) => {}
        Err(e) => eprintln!("journal: disabled ({e}); running without checkpointing"),
    }
    let observer = telemetry::install(SweepObserver::new());
    // One trace cache across every phase below: the phases sweep
    // overlapping trace sets, so without this each grid rebuilds the
    // same traces from scratch.
    trace_pool::install_default_global();
    let reporter = ProgressReporter::start(ProgressMode::from_env(&args));
    let t0 = Instant::now();
    let save = |name: &str, body: String| {
        let path = format!("results/{name}.txt");
        fs::write(&path, &body).expect("write report");
        println!("=== {name} ({:?} elapsed) ===\n{body}", t0.elapsed());
    };

    telemetry::phase("storage");
    save("tab3_storage", format!("{}\n{}", storage::tab3_storage(), storage::tab5_overheads()));
    telemetry::phase("motivation");
    save("tab1_pcr_pdr", motivation::tab1_pcr_pdr(scale));
    save("fig2_top_patterns", motivation::fig2_top_patterns(scale));
    save("fig4_icdd", motivation::fig4_icdd(scale));
    save("fig5_heatmaps", motivation::fig5_heatmaps(scale));
    save("per_suite", motivation::per_suite(scale));

    telemetry::phase("headline");
    let runs = headline::HeadlineRuns::execute(scale);
    save("fig8_singlecore", headline::fig8(&runs));
    save("fig9_cov_acc", headline::fig9(&runs));
    save("fig10_useful", headline::fig10(&runs));
    save("nmt_traffic", headline::nmt_report(&runs));

    telemetry::phase("ablation");
    save("tab8_design_b", ablation::tab8_design_b(scale));
    save("ext_schemes", ablation::ext_schemes(scale));
    save("mfp_ablation", ablation::mfp_ablation(scale));
    save("tab9_pattern_len", ablation::tab9_pattern_len(scale));
    save("tab10_width_counter", ablation::tab10_width_counter(scale));
    save("tab11_monitor_range", ablation::tab11_monitor_range(scale));
    save("xp_extension", ablation::xp_extension(scale));
    save("related_work", ablation::related_work(scale));
    save("placement", ablation::placement(scale));

    telemetry::phase("sensitivity");
    save("fig12a_bandwidth", sensitivity::fig12a_bandwidth(scale));
    save("fig12b_llc", sensitivity::fig12b_llc(scale));

    telemetry::phase("multicore");
    save("fig13_multicore", multicore::fig13(scale));
    match reporter {
        Some(reporter) => reporter.finish(),
        None => eprintln!("{}", telemetry::summary_line(&observer.snapshot())),
    }
    if journal::global_hits() > 0 {
        eprintln!("journal: {} cells served from checkpoint", journal::global_hits());
    }
    let scale_tag = format!("{scale:?}");
    if telemetry::write_sweep_json(Path::new("results/BENCH_sweep.json"), "run_all", &scale_tag) {
        eprintln!("wrote results/BENCH_sweep.json");
    }
    eprintln!("run_all finished in {:?}", t0.elapsed());
}
