//! Runs every experiment and writes the reports under `results/`.
//! Scale via `PMP_SCALE` (tiny/small/standard/large; default standard).
//!
//! Flags:
//! * `--resume` — reuse completed cells from `results/journal.jsonl`
//!   (an interrupted run picks up where it stopped).
//! * `--fresh` — explicit form of the default: truncate the journal and
//!   recompute everything.
use pmp_bench::experiments::{ablation, headline, motivation, multicore, scale_from_env, sensitivity, storage};
use pmp_bench::journal;
use std::fs;
use std::path::Path;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let resume = args.iter().any(|a| a == "--resume");
    for a in &args {
        if a != "--resume" && a != "--fresh" {
            eprintln!("unknown flag {a}; expected --resume or --fresh");
            std::process::exit(2);
        }
    }
    let scale = scale_from_env();
    fs::create_dir_all("results").expect("create results dir");
    match journal::init_global(Path::new("results/journal.jsonl"), resume) {
        Ok(info) if resume => eprintln!(
            "journal: resumed with {} completed cells ({} corrupt lines skipped)",
            info.loaded, info.skipped
        ),
        Ok(_) => {}
        Err(e) => eprintln!("journal: disabled ({e}); running without checkpointing"),
    }
    let t0 = Instant::now();
    let save = |name: &str, body: String| {
        let path = format!("results/{name}.txt");
        fs::write(&path, &body).expect("write report");
        println!("=== {name} ({:?} elapsed) ===\n{body}", t0.elapsed());
    };

    save("tab3_storage", format!("{}\n{}", storage::tab3_storage(), storage::tab5_overheads()));
    save("tab1_pcr_pdr", motivation::tab1_pcr_pdr(scale));
    save("fig2_top_patterns", motivation::fig2_top_patterns(scale));
    save("fig4_icdd", motivation::fig4_icdd(scale));
    save("fig5_heatmaps", motivation::fig5_heatmaps(scale));
    save("per_suite", motivation::per_suite(scale));

    let runs = headline::HeadlineRuns::execute(scale);
    save("fig8_singlecore", headline::fig8(&runs));
    save("fig9_cov_acc", headline::fig9(&runs));
    save("fig10_useful", headline::fig10(&runs));
    save("nmt_traffic", headline::nmt_report(&runs));

    save("tab8_design_b", ablation::tab8_design_b(scale));
    save("ext_schemes", ablation::ext_schemes(scale));
    save("mfp_ablation", ablation::mfp_ablation(scale));
    save("tab9_pattern_len", ablation::tab9_pattern_len(scale));
    save("tab10_width_counter", ablation::tab10_width_counter(scale));
    save("tab11_monitor_range", ablation::tab11_monitor_range(scale));
    save("xp_extension", ablation::xp_extension(scale));
    save("related_work", ablation::related_work(scale));
    save("placement", ablation::placement(scale));

    save("fig12a_bandwidth", sensitivity::fig12a_bandwidth(scale));
    save("fig12b_llc", sensitivity::fig12b_llc(scale));

    save("fig13_multicore", multicore::fig13(scale));
    if journal::global_hits() > 0 {
        eprintln!("journal: {} cells served from checkpoint", journal::global_hits());
    }
    eprintln!("run_all finished in {:?}", t0.elapsed());
}
