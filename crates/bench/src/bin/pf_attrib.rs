//! Prefetch provenance & fate attribution report: run one (trace,
//! prefetcher) cell with the flight recorder attached and break every
//! issued prefetch down by its scheme-internal origin and final fate.
//!
//! Usage: `pf_attrib [trace-name] [scale] [kind] [top_k]`
//!   defaults:  spec06.stream_1  standard  pmp  16
//!
//! Text report goes to stdout; the JSON document is written to
//! `results/obs/pf_attrib.json`. Drop pressure (PQ-full vs MSHR-full)
//! is part of the fate table — see ARCHITECTURE.md "Prefetch
//! attribution".

use pmp_bench::attrib::{render_text, run_attrib};
use pmp_bench::prefetchers::PrefetcherKind;
use pmp_obs::Fate;
use pmp_traces::{catalog, TraceScale};
use std::fs;

fn main() {
    let trace_name = std::env::args().nth(1).unwrap_or_else(|| "spec06.stream_1".to_string());
    let scale = match std::env::args().nth(2).as_deref() {
        Some("tiny") => TraceScale::Tiny,
        Some("small") => TraceScale::Small,
        Some("large") => TraceScale::Large,
        _ => TraceScale::Standard,
    };
    let kind_label = std::env::args().nth(3).unwrap_or_else(|| "pmp".to_string());
    let kind = PrefetcherKind::from_label(&kind_label)
        .unwrap_or_else(|| panic!("unknown prefetcher kind {kind_label}"));
    let top_k: usize =
        std::env::args().nth(4).and_then(|s| s.parse().ok()).unwrap_or(16);
    let spec = catalog()
        .into_iter()
        .find(|s| s.name == trace_name)
        .unwrap_or_else(|| panic!("unknown trace {trace_name}; see pmp-traces catalog"));

    let out = run_attrib(&spec, &kind, scale, top_k);
    print!("{}", render_text(&spec.name, &kind, &out));

    // Drop-pressure summary: how much of the issue stream the memory
    // system refused, and why (satellite of the attribution PR — the
    // aggregate pf_dropped/pf_redundant counters are in stats.json,
    // this splits them by admission resource).
    let issued = out.report.issued.max(1);
    let pq = out.report.totals[Fate::DroppedPq as usize];
    let mshr = out.report.totals[Fate::DroppedMshr as usize];
    let red = out.report.totals[Fate::Redundant as usize];
    println!(
        "drop pressure: pq {:.2}%  mshr {:.2}%  redundant {:.2}%",
        pq as f64 * 100.0 / issued as f64,
        mshr as f64 * 100.0 / issued as f64,
        red as f64 * 100.0 / issued as f64,
    );

    let _ = fs::create_dir_all("results/obs");
    let json_path = "results/obs/pf_attrib.json";
    let mut doc = out.report.to_json();
    // Wrap with run identity so downstream tooling knows the cell.
    doc = format!(
        "{{\n\"trace\": \"{}\", \"scale\": \"{:?}\", \"prefetcher\": \"{}\", \"ipc\": {:.6},\n\"attribution\": {}}}\n",
        spec.name,
        scale,
        kind.label(),
        out.result.ipc(),
        doc
    );
    match fs::write(json_path, &doc) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("failed to write {json_path}: {e}"),
    }
}
