//! Trace utility: list the catalog, export traces to the binary PMPT
//! format, and inspect trace files.
//!
//! ```sh
//! trace_tool list
//! trace_tool export spec06.mcf_2 /tmp/mcf2.pmpt [tiny|small|standard|large]
//! trace_tool info /tmp/mcf2.pmpt
//! ```

use pmp_traces::io::{read_trace, write_trace};
use pmp_traces::{catalog, TraceScale};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

fn scale_of(arg: Option<&str>) -> TraceScale {
    match arg {
        Some("tiny") => TraceScale::Tiny,
        Some("standard") => TraceScale::Standard,
        Some("large") => TraceScale::Large,
        _ => TraceScale::Small,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            for spec in catalog() {
                println!("{:8} {}", spec.suite.to_string(), spec.name);
            }
            ExitCode::SUCCESS
        }
        Some("export") if args.len() >= 3 => {
            let name = &args[1];
            let Some(spec) = catalog().into_iter().find(|s| &s.name == name) else {
                eprintln!("unknown trace {name} (see `trace_tool list`)");
                return ExitCode::FAILURE;
            };
            let trace = spec.build(scale_of(args.get(3).map(String::as_str)));
            let file = match File::create(&args[2]) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot create {}: {e}", args[2]);
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = write_trace(&trace, BufWriter::new(file)) {
                eprintln!("write failed: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {} ({} ops) to {}", trace.name, trace.mem_ops(), args[2]);
            ExitCode::SUCCESS
        }
        Some("info") if args.len() >= 2 => {
            let file = match File::open(&args[1]) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot open {}: {e}", args[1]);
                    return ExitCode::FAILURE;
                }
            };
            match read_trace(BufReader::new(file)) {
                Ok(t) => {
                    let loads = t.ops.iter().filter(|o| o.access.kind.is_load()).count();
                    let deps = t.ops.iter().filter(|o| o.dep_on_prev_load).count();
                    println!("name:         {}", t.name);
                    println!("suite:        {}", t.suite);
                    println!("memory ops:   {} ({} loads, {} stores)", t.mem_ops(), loads, t.mem_ops() - loads);
                    println!("instructions: {}", t.instruction_count());
                    println!("dep chains:   {deps} dependent loads");
                    println!("footprint:    {:.1} MB", t.footprint_lines() as f64 * 64.0 / 1e6);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("read failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!("usage: trace_tool list | export <name> <file> [scale] | info <file>");
            ExitCode::FAILURE
        }
    }
}
