//! Regenerates the related-work comparison (paper §VI; DESIGN.md §4).
use pmp_bench::experiments::{ablation, scale_from_env};

fn main() {
    println!("{}", ablation::related_work(scale_from_env()));
}
