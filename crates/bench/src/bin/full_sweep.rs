//! Full 125-trace single-core sweep (development diagnostic).
use pmp_bench::prefetchers::PrefetcherKind;
use pmp_bench::runner::{run_traces, normalized_ipcs, geo_mean, RunConfig};
use pmp_traces::{catalog, Suite, TraceScale};

fn main() {
    let specs = catalog();
    let cfg = RunConfig { scale: TraceScale::Small, ..RunConfig::default() };
    let base = run_traces(&specs, &PrefetcherKind::None, &cfg);
    let mpki: Vec<f64> = base.iter().map(|o| o.result.stats.llc_mpki()).collect();
    let lo = mpki.iter().filter(|&&m| m <= 5.0).count();
    eprintln!("traces with MPKI<=5: {lo}/125; median {:.1}", {
        let mut s = mpki.clone(); s.sort_by(|a,b| a.partial_cmp(b).unwrap()); s[62]
    });
    for kind in PrefetcherKind::paper_five() {
        let out = run_traces(&specs, &kind, &cfg);
        let (nipcs, g) = normalized_ipcs(&base, &out);
        let mut line = format!("{:8} overall {:.3}", kind.label(), g);
        for suite in Suite::ALL {
            let vals: Vec<f64> = nipcs.iter().zip(&base).filter(|(_, b)| b.suite == suite).map(|(n, _)| *n).collect();
            line += &format!("  {suite}={:.3}", geo_mean(&vals));
        }
        println!("{line}");
    }
}
