//! Full 125-trace single-core sweep (development diagnostic), run
//! fault-tolerantly: every cell is isolated, completed cells are
//! journaled to `results/journal.jsonl`, and failures are reported in a
//! summary instead of killing the sweep.
//!
//! Flags:
//! * `--resume` — serve already-journaled cells from the checkpoint and
//!   execute only the missing ones.
//! * `--fresh` — explicit form of the default: truncate the journal.
//! * `--inject-faults` — add two deliberately broken cells (a
//!   prefetcher that panics mid-run and a corrupted trace file) to
//!   demonstrate that the sweep degrades to a reported gap instead of
//!   crashing.
//! * `--no-progress` — suppress the live progress/ETA reporter (also
//!   `PMP_NO_PROGRESS=1`).
//! * `--snapshot-dir <dir>` — snapshot each cell's learned prefetcher
//!   state into `<dir>` after the cell completes (crash-safe writes).
//! * `--warm-start <dir>` — restore learned state from matching
//!   snapshots in `<dir>` before each cell runs; missing or invalid
//!   snapshots degrade to the usual cold start.
//!
//! The sweep runs with telemetry on: per-cell spans aggregate into
//! `results/BENCH_sweep.json` (wall-clock, ops/sec, per-prefetcher
//! and per-archetype wall histograms, executed/resumed/failed counts)
//! so sweep throughput is a tracked perf number — `bench_diff` gates
//! on it.
//!
//! The whole baseline + paper-five product runs as ONE grid through
//! the work-stealing scheduler: no per-kind barrier, and the shared
//! trace cache generates each of the 125 traces once instead of once
//! per prefetcher.
use pmp_bench::prefetchers::PrefetcherKind;
use pmp_bench::progress::{ProgressMode, ProgressReporter};
use pmp_bench::runner::{geo_mean, run_cell, run_grid, CellSpec, RunConfig, RunOutcome};
use pmp_bench::{journal, telemetry};
use pmp_obs::SweepObserver;
use pmp_traces::io::write_trace_file;
use pmp_traces::{catalog, Suite, TraceScale};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Cycle budget per cell: generous for a healthy Small-scale run, but a
/// livelocked cell is cut off instead of hanging the sweep forever.
const CELL_CYCLE_BUDGET: u64 = 2_000_000_000;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let resume = args.iter().any(|a| a == "--resume");
    let inject = args.iter().any(|a| a == "--inject-faults");
    let mut snapshot_dir: Option<PathBuf> = None;
    let mut warm_start: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        match a.as_str() {
            "--resume" | "--fresh" | "--inject-faults" | "--no-progress" => {}
            "--snapshot-dir" | "--warm-start" => {
                let Some(dir) = args.get(i + 1) else {
                    eprintln!("{a} requires a directory argument");
                    std::process::exit(2);
                };
                if a == "--snapshot-dir" {
                    snapshot_dir = Some(PathBuf::from(dir));
                } else {
                    warm_start = Some(PathBuf::from(dir));
                }
                i += 1;
            }
            _ => {
                eprintln!(
                    "unknown flag {a}; expected --resume, --fresh, --inject-faults, \
                     --no-progress, --snapshot-dir <dir> or --warm-start <dir>"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    std::fs::create_dir_all("results").expect("create results dir");
    match journal::init_global(Path::new("results/journal.jsonl"), resume) {
        Ok(info) if resume => eprintln!(
            "journal: resumed with {} completed cells ({} corrupt lines skipped)",
            info.loaded, info.skipped
        ),
        Ok(_) => {}
        Err(e) => eprintln!("journal: disabled ({e}); running without checkpointing"),
    }
    telemetry::install(SweepObserver::new());
    let reporter = ProgressReporter::start(ProgressMode::from_env(&args));

    let specs = catalog();
    let cfg = RunConfig {
        scale: TraceScale::Small,
        max_cycles: Some(CELL_CYCLE_BUDGET),
        snapshot_dir,
        warm_start,
        ..RunConfig::default()
    };

    // Baseline + paper five as ONE 125 × 6 grid through the shared
    // scheduler pool; outcomes are partitioned by prefetcher label
    // afterwards. Traces whose baseline cell failed are excluded from
    // every comparison below (there is nothing to normalise by).
    telemetry::phase("grid");
    let cells: Vec<CellSpec> = specs.iter().cloned().map(CellSpec::Synthetic).collect();
    let mut kinds = vec![PrefetcherKind::None];
    kinds.extend(PrefetcherKind::paper_five());
    let (outcomes, mut summary) = run_grid(&cells, &kinds, &cfg);
    let mut base: HashMap<String, RunOutcome> = HashMap::new();
    let mut by_kind: HashMap<String, Vec<RunOutcome>> = HashMap::new();
    for o in outcomes {
        if o.prefetcher == PrefetcherKind::None.label() {
            base.insert(o.trace.clone(), o);
        } else {
            by_kind.entry(o.prefetcher.clone()).or_default().push(o);
        }
    }
    if base.is_empty() {
        eprint!("{}", summary.report());
        eprintln!("no baseline cell completed; nothing to normalise");
        std::process::exit(1);
    }
    let mpki: Vec<f64> = base.values().map(|o| o.result.stats.llc_mpki()).collect();
    let lo = mpki.iter().filter(|&&m| m <= 5.0).count();
    eprintln!("traces with MPKI<=5: {lo}/{}; median {:.1}", base.len(), {
        let mut s = mpki.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite MPKI"));
        s[s.len() / 2]
    });

    for kind in PrefetcherKind::paper_five() {
        let outs = by_kind.remove(&kind.label()).unwrap_or_default();
        let pairs: Vec<(Suite, f64)> = outs
            .iter()
            .filter_map(|o| {
                base.get(&o.trace)
                    .map(|b| (o.suite, o.result.ipc() / b.result.ipc().max(1e-12)))
            })
            .collect();
        if pairs.is_empty() {
            eprintln!("{:8} no completed cells", kind.label());
            continue;
        }
        let all: Vec<f64> = pairs.iter().map(|(_, n)| *n).collect();
        let mut line = format!("{:8} overall {:.3}", kind.label(), geo_mean(&all));
        for suite in Suite::ALL {
            let vals: Vec<f64> =
                pairs.iter().filter(|(s, _)| *s == suite).map(|(_, n)| *n).collect();
            if !vals.is_empty() {
                line += &format!("  {suite}={:.3}", geo_mean(&vals));
            }
        }
        println!("{line}");
    }

    if inject {
        telemetry::phase("fault_injection");
        eprintln!("injecting two faulty cells (expected to fail in isolation)...");
        // Cell 1: a prefetcher that panics partway through the run.
        match pmp_bench::runner::run_trace_checked(
            &specs[0],
            &PrefetcherKind::FaultyPanicAfter(10_000),
            &cfg,
        ) {
            Ok(o) => {
                summary.completed += 1;
                eprintln!("unexpected: injected panic cell completed ({})", o.trace);
            }
            Err(f) => summary.failures.push(f),
        }
        // Cell 2: a trace file truncated mid-record.
        let path = PathBuf::from("results/injected_corrupt.pmpt");
        let trace = specs[0].build(TraceScale::Tiny);
        write_trace_file(&trace, &path).expect("write injected trace");
        let full = std::fs::read(&path).expect("read back");
        std::fs::write(&path, &full[..full.len() - 7]).expect("truncate injected trace");
        match run_cell(&CellSpec::File(path), &PrefetcherKind::None, &cfg) {
            Ok(o) => {
                summary.completed += 1;
                eprintln!("unexpected: corrupted trace cell completed ({})", o.trace);
            }
            Err(f) => summary.failures.push(f),
        }
    }

    if let Some(reporter) = reporter {
        reporter.finish();
    }
    // `summary.resumed` is already the grid's own journal-hit delta;
    // the injected cells above fail, so they never add resumes.
    eprint!("{}", summary.report());
    if let Some(warning) = journal::global_write_warning() {
        eprintln!("WARNING: {warning}");
    }
    if telemetry::write_sweep_json(
        Path::new("results/BENCH_sweep.json"),
        "full_sweep",
        &format!("{:?}", cfg.scale),
    ) {
        eprintln!("wrote results/BENCH_sweep.json");
    }
    if inject && summary.failures.len() < 2 {
        eprintln!("fault injection expected 2 failures, saw {}", summary.failures.len());
        std::process::exit(1);
    }
}
