//! Regenerates Fig. 9 (coverage & accuracy). See DESIGN.md §4.
//!
//! Pass `--attrib` to append a per-origin fate deep-dive (PMP with the
//! flight recorder over every catalog trace) after the figure — see
//! ARCHITECTURE.md "Prefetch attribution".
use pmp_bench::experiments::{headline, scale_from_env};
use pmp_bench::{attrib, prefetchers::PrefetcherKind};

fn main() {
    let scale = scale_from_env();
    let runs = headline::HeadlineRuns::execute(scale);
    println!("{}", headline::fig9(&runs));
    if std::env::args().any(|a| a == "--attrib") {
        println!("-- attribution deep-dive (pmp, per-origin fates) --");
        print!("{}", attrib::deep_dive_all(&PrefetcherKind::Pmp, scale, 8));
    }
}
