//! Regenerates the paper artifact `tab10_width_counter` (see DESIGN.md §4).
//! Scale via `PMP_SCALE` (tiny/small/standard/large).
use pmp_bench::experiments::{self, scale_from_env};

fn main() {
    let scale = scale_from_env();
    println!("{}", experiments::ablation::tab10_width_counter(scale));
}
