//! Diagnostic: PMP vs PMP-Limit traffic and NIPC.
use pmp_bench::prefetchers::PrefetcherKind;
use pmp_bench::runner::{run_specs_grid, normalized_ipcs, RunConfig};
use pmp_traces::{representative_subset, TraceScale};

fn main() {
    let specs = representative_subset();
    let cfg = RunConfig { scale: TraceScale::Small, ..RunConfig::default() };
    let kinds = vec![
        PrefetcherKind::None,
        PrefetcherKind::Pmp,
        PrefetcherKind::PmpLimit,
        PrefetcherKind::Bingo,
    ];
    let mut grids = run_specs_grid(&specs, &kinds, &cfg).into_iter();
    let base = grids.next().expect("baseline grid present");
    for (kind, out) in kinds[1..].iter().zip(grids) {
        let (_, g) = normalized_ipcs(&base, &out);
        let dram: u64 = out.iter().map(|o| o.result.stats.dram_requests).sum();
        let bdram: u64 = base.iter().map(|o| o.result.stats.dram_requests).sum();
        let issued: u64 = out.iter().map(|o| o.result.stats.pf_issued).sum();
        println!("{:10} nipc={:.3} NMT={:.1}% issued={}", kind.label(), g, dram as f64/bdram as f64*100.0, issued);
    }
}
