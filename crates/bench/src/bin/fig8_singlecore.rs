//! Regenerates Fig. 8 (single-core NIPC). See DESIGN.md §4.
use pmp_bench::experiments::{headline, scale_from_env};

fn main() {
    let runs = headline::HeadlineRuns::execute(scale_from_env());
    println!("{}", headline::fig8(&runs));
}
