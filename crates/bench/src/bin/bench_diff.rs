//! `bench_diff` — gate on the perf trajectory.
//!
//! Compares two `BENCH_*.json` files (either `BENCH_sim.json` from
//! `sim_throughput` or `BENCH_sweep.json` from a telemetry-on sweep)
//! and exits nonzero when any throughput metric dropped past the
//! threshold.
//!
//! Usage:
//!
//! ```text
//! bench_diff OLD.json NEW.json [--threshold 0.15] [--report-only] [--metrics throughput|decision]
//! ```
//!
//! `--metrics decision` compares decision-quality fields (`ipc`,
//! `accuracy`, `timeliness`, `coverage` — aggregate and per-origin)
//! from two `pf_attrib.json` documents instead of throughputs. Origin
//! rows churn as prefetchers learn, so pair it with `--report-only`
//! unless you want added/removed origins to gate.
//!
//! Exit codes (stable, scripts key on them):
//! * `0` — no regression (or `--report-only`, which always reports
//!   and exits 0 so CI can surface the diff without gating on noisy
//!   shared runners).
//! * `1` — at least one metric regressed past the threshold, or a
//!   baseline metric disappeared.
//! * `2` — usage or I/O error.

use pmp_bench::benchdiff::{BenchDiff, MetricSet};

/// Default relative drop tolerated before flagging: 10%.
const DEFAULT_THRESHOLD: f64 = 0.10;

fn usage() -> ! {
    eprintln!(
        "usage: bench_diff OLD.json NEW.json [--threshold FRACTION] [--report-only] [--metrics throughput|decision]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut report_only = false;
    let mut set = MetricSet::Throughput;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--report-only" => report_only = true,
            "--metrics" => {
                set = match it.next().as_deref() {
                    Some("throughput") => MetricSet::Throughput,
                    Some("decision") => MetricSet::Decision,
                    _ => usage(),
                };
            }
            "--threshold" => {
                let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    usage();
                };
                if !(0.0..1.0).contains(&v) {
                    eprintln!("threshold must be a fraction in [0, 1), got {v}");
                    std::process::exit(2);
                }
                threshold = v;
            }
            _ if arg.starts_with("--") => usage(),
            _ => paths.push(arg),
        }
    }
    if paths.len() != 2 {
        usage();
    }
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(body) => body,
        Err(e) => {
            eprintln!("bench_diff: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let old = read(&paths[0]);
    let new = read(&paths[1]);
    let diff = BenchDiff::compare_for(&old, &new, threshold, set);
    print!("{}", diff.report());
    if diff.has_regression() {
        println!(
            "regression past {:.0}% threshold ({} vs {})",
            threshold * 100.0,
            paths[1],
            paths[0]
        );
        if report_only {
            println!("report-only mode: exiting 0");
        } else {
            std::process::exit(1);
        }
    } else {
        println!("no regression past {:.0}% threshold", threshold * 100.0);
    }
}
