//! Regenerates the Section V-D NMT analysis. See DESIGN.md §4.
use pmp_bench::experiments::{headline, scale_from_env};

fn main() {
    let runs = headline::HeadlineRuns::execute(scale_from_env());
    println!("{}", headline::nmt_report(&runs));
}
