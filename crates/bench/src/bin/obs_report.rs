//! End-to-end observability report: run PMP on one workload with full
//! lifecycle tracing, interval sampling, and structural introspection,
//! then render everything the `pmp-obs` crate can see.
//!
//! Usage: `obs_report [trace-name] [scale]` — defaults to
//! `spec06.stream_1` at the Standard scale. Reports go to stdout; the
//! interval time-series CSV and JSON Lines are also written under
//! `results/obs/`.

use pmp_core::{Pmp, PmpConfig};
use pmp_sim::{EventKind, ObsCollector, System, SystemConfig};
use pmp_stats::report::interval_table;
use pmp_stats::storage::interval_samples_to_json_lines;
use pmp_stats::{sim_stats_to_json, Table};
use pmp_traces::{catalog, TraceScale};
use std::fs;

fn main() {
    let trace_name =
        std::env::args().nth(1).unwrap_or_else(|| "spec06.stream_1".to_string());
    let scale = match std::env::args().nth(2).as_deref() {
        Some("tiny") => TraceScale::Tiny,
        Some("small") => TraceScale::Small,
        Some("large") => TraceScale::Large,
        _ => TraceScale::Standard,
    };
    let spec = catalog()
        .into_iter()
        .find(|s| s.name == trace_name)
        .unwrap_or_else(|| panic!("unknown trace {trace_name}; see pmp-traces catalog"));
    let trace = spec.build(scale);

    let mut sys = System::with_tracer(
        SystemConfig::default(),
        Box::new(Pmp::new(PmpConfig::default())),
        ObsCollector::with_ring(4096),
    );
    sys.enable_sampling(2_000);
    let result = sys.run(&trace.ops, scale.warmup_instructions());

    println!("== obs_report: pmp on {trace_name} ({scale:?}) ==\n");
    println!(
        "ipc={:.3}  cycles={}  llc_mpki={:.2}\n",
        result.ipc(),
        result.cycles,
        result.stats.llc_mpki()
    );

    // --- 1. Prefetch-lifecycle summary.
    let collector = sys.tracer();
    let mut lifecycle = Table::new(&["event", "count"]);
    for kind in EventKind::ALL {
        lifecycle.row_owned(vec![
            kind.name().to_string(),
            collector.count(kind).to_string(),
        ]);
    }
    println!("-- lifecycle events --\n{}", lifecycle.render());
    // Drop-pressure split: the aggregate pf_dropped counter (exported in
    // stats.json) broken down by which admission resource refused the
    // request. A PQ-dominated split means the issue burst outruns the
    // queue; MSHR-dominated means the memory system is the bottleneck.
    let dropped = collector.dropped_pq() + collector.dropped_mshr();
    println!(
        "drop pressure: pq_full={}  mshr_full={}  ({:.1}% / {:.1}% of {} drops)",
        collector.dropped_pq(),
        collector.dropped_mshr(),
        collector.dropped_pq() as f64 * 100.0 / dropped.max(1) as f64,
        collector.dropped_mshr() as f64 * 100.0 / dropped.max(1) as f64,
        dropped,
    );
    println!(
        "late-useful prefetches: {}  (ring holds last {} of {} events)\n",
        collector.late_useful(),
        collector.ring().map(|r| r.len()).unwrap_or(0),
        collector.ring().map(|r| r.total()).unwrap_or(0),
    );

    // --- 2. Latency histograms (log2 buckets).
    for (label, hist) in [
        ("prefetch issue→fill", collector.pf_latency()),
        ("demand-miss", collector.demand_latency()),
        ("dram", collector.dram_latency()),
    ] {
        let mut t = Table::new(&["cycles", "count"]);
        for (lo, hi, n) in hist.nonzero() {
            t.row_owned(vec![format!("{lo}..{hi}"), n.to_string()]);
        }
        println!(
            "-- {label} latency: n={} mean={:.1} p99<={} --\n{}",
            hist.count(),
            hist.mean(),
            hist.percentile_upper_bound(0.99),
            t.render()
        );
    }

    // --- 3. Interval time-series.
    let samples = sys.samples().to_vec();
    let series = interval_table(&samples);
    println!("-- interval time-series ({} samples) --\n{}", samples.len(), series.render());

    // --- 4. PMP structural introspection.
    let mut gauges = Table::new(&["gauge", "value"]);
    for g in sys.prefetcher_gauges() {
        gauges.row_owned(vec![g.name.to_string(), format!("{:.4}", g.value)]);
    }
    println!("-- pmp introspection --\n{}", gauges.render());

    // --- 5. Machine-readable exports.
    let _ = fs::create_dir_all("results/obs");
    let csv_path = "results/obs/intervals.csv";
    let jsonl_path = "results/obs/intervals.jsonl";
    let stats_path = "results/obs/stats.json";
    let hist_path = "results/obs/latency_histograms.jsonl";
    let _ = fs::write(csv_path, series.to_csv());
    let _ = fs::write(jsonl_path, interval_samples_to_json_lines(&samples));
    let _ = fs::write(stats_path, sim_stats_to_json(&result.stats));
    let mut hist_lines = String::new();
    for (label, hist) in [
        ("pf_issue_to_fill", collector.pf_latency()),
        ("demand_miss", collector.demand_latency()),
        ("dram", collector.dram_latency()),
    ] {
        let buckets: Vec<String> = hist
            .nonzero()
            .iter()
            .map(|(lo, hi, n)| format!("{{\"lo\":{lo},\"hi\":{hi},\"count\":{n}}}"))
            .collect();
        hist_lines.push_str(&format!(
            "{{\"histogram\":\"{label}\",\"count\":{},\"mean\":{:.3},\"buckets\":[{}]}}\n",
            hist.count(),
            hist.mean(),
            buckets.join(",")
        ));
    }
    let _ = fs::write(hist_path, hist_lines);
    println!("wrote {csv_path}, {jsonl_path}, {stats_path}, {hist_path}");
}
