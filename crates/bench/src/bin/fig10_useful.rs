//! Regenerates Fig. 10 (useful/useless prefetches). See DESIGN.md §4.
use pmp_bench::experiments::{headline, scale_from_env};

fn main() {
    let runs = headline::HeadlineRuns::execute(scale_from_env());
    println!("{}", headline::fig10(&runs));
}
