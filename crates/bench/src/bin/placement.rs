//! Regenerates the Section V-B placement aside (DESIGN.md §4).
use pmp_bench::experiments::{ablation, scale_from_env};

fn main() {
    println!("{}", ablation::placement(scale_from_env()));
}
