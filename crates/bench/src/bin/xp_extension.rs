//! Regenerates the cross-page extension study (future work; DESIGN.md §4).
use pmp_bench::experiments::{ablation, scale_from_env};

fn main() {
    println!("{}", ablation::xp_extension(scale_from_env()));
}
