//! Quick end-to-end sanity check: a few traces × all prefetchers.
use pmp_bench::prefetchers::PrefetcherKind;
use pmp_bench::runner::{geo_mean, run_specs_grid, normalized_ipcs, RunConfig};
use pmp_traces::{catalog, TraceScale};
use pmp_types::CacheLevel;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("small") => TraceScale::Small,
        Some("standard") => TraceScale::Standard,
        _ => TraceScale::Small,
    };
    let all = catalog();
    let names = ["spec06.stream_1","spec06.astar_0","spec06.mcf_2","spec06.hash_3","spec17.stride_2","ligra.bfs_2","ligra.pagerank_4","parsec.stencil_2"];
    let specs: Vec<_> = all.iter().filter(|s| names.contains(&s.name.as_str())).cloned().collect();
    let cfg = RunConfig { scale, ..RunConfig::default() };
    let kinds = vec![
        PrefetcherKind::None,
        PrefetcherKind::NextLine,
        PrefetcherKind::Sms,
        PrefetcherKind::DsPatch,
        PrefetcherKind::Bingo,
        PrefetcherKind::SppPpf,
        PrefetcherKind::Pythia,
        PrefetcherKind::Pmp,
    ];
    let t0 = std::time::Instant::now();
    // One scheduler product: every trace is generated once and shared
    // across all eight prefetchers.
    let mut grids = run_specs_grid(&specs, &kinds, &cfg).into_iter();
    let base = grids.next().expect("baseline grid present");
    println!("grid done in {:?}", t0.elapsed());
    for o in &base {
        println!("  {:22} ipc={:.3} mpki={:.1}", o.trace, o.result.ipc(), o.result.stats.llc_mpki());
    }
    for (kind, out) in kinds[1..].iter().zip(grids) {
        let (nipcs, g) = normalized_ipcs(&base, &out);
        let acc: Vec<String> = out.iter().map(|o| {
            let l1 = o.result.stats.level(CacheLevel::L1D);
            format!("{:.2}", l1.accuracy().unwrap_or(0.0))
        }).collect();
        println!("{:10} geomean NIPC = {:.3}  ({:?})  l1acc={:?}", kind.label(), g, nipcs.iter().map(|x| (x*100.0).round()/100.0).collect::<Vec<_>>(), acc);
        let _ = geo_mean(&nipcs);
    }
}
