//! Regenerates the per-suite motivation breakdown (DESIGN.md §4).
use pmp_bench::experiments::{motivation, scale_from_env};

fn main() {
    println!("{}", motivation::per_suite(scale_from_env()));
}
