//! Per-trace prefetch diagnostics (development tool).
use pmp_bench::prefetchers::PrefetcherKind;
use pmp_bench::runner::{run_trace, RunConfig};
use pmp_traces::{catalog, TraceScale};
use pmp_types::CacheLevel;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "ligra.bfs_2".into());
    let all = catalog();
    let spec = all.iter().find(|s| s.name == name).expect("trace name");
    let cfg = RunConfig { scale: TraceScale::Small, ..RunConfig::default() };
    let base = run_trace(spec, &PrefetcherKind::None, &cfg);
    println!("baseline ipc={:.3} mpki={:.1} dram={}", base.result.ipc(), base.result.stats.llc_mpki(), base.result.stats.dram_requests);
    for kind in [PrefetcherKind::DsPatch, PrefetcherKind::Bingo, PrefetcherKind::SppPpf, PrefetcherKind::Pythia, PrefetcherKind::Pmp] {
        let o = run_trace(spec, &kind, &cfg);
        let s = &o.result.stats;
        print!("{:8} nipc={:.3} issued={} adm={} drop={} redun={} dram={}", kind.label(), o.result.ipc()/base.result.ipc(), s.pf_issued, s.pf_admitted, s.pf_dropped, s.pf_redundant, s.dram_requests);
        for l in CacheLevel::ALL {
            let v = s.level(l);
            print!("  {l}[fill={} useful={} useless={} late={}]", v.pf_fills, v.pf_useful, v.pf_useless, v.pf_late);
        }
        println!();
    }
}
