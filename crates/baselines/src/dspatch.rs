//! DSPatch — Dual Spatial Pattern prefetcher (Bera et al., MICRO 2019).
//!
//! DSPatch keeps **two** merged bit vectors per trigger PC:
//!
//! * **CovP** (coverage pattern): the bitwise **OR** of all observed
//!   patterns — a superset biased toward coverage;
//! * **AccP** (accuracy pattern): the bitwise **AND** — a common subset
//!   biased toward accuracy;
//!
//! and picks between them based on memory-bandwidth pressure. The PMP
//! paper uses DSPatch as the example of why OR/AND merging is lossy
//! ("a few outlier samples can obscure the differences in memory access
//! patterns completely") — reproducing that behaviour faithfully is the
//! point of this module.
//!
//! Like the original, DSPatch measures DRAM bandwidth directly when the
//! simulator delivers utilization samples (interval sampling enabled —
//! see [`Prefetcher::on_bandwidth`]); without sampling it falls back to
//! a prefetcher-side proxy, the recent useless-prefetch ratio from fill
//! feedback, which rises exactly when prefetch traffic is wasting
//! bandwidth.

use pmp_core::capture::{CaptureConfig, CapturedPattern, PatternCapture};
use pmp_prefetch::{
    AccessInfo, ByteReader, ByteWriter, EvictInfo, FeedbackKind, Introspect, PrefetchRequest,
    Prefetcher, ReplayQueue, SnapshotError, StateImage,
};
use pmp_types::{config_fingerprint, BitPattern, CacheLevel, LineAddr, Pc};

/// DSPatch configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DsPatchConfig {
    /// Capture framework (page-grained pattern accumulation).
    pub capture: CaptureConfig,
    /// Signature-prediction-table entries (PC-indexed, direct-mapped).
    pub spt_entries: usize,
    /// Useless-ratio above which the accuracy-biased AccP is used.
    pub acc_switch_threshold: f64,
}

impl Default for DsPatchConfig {
    /// 128-entry SPT ≈ the paper's 3.6KB budget.
    fn default() -> Self {
        DsPatchConfig {
            capture: CaptureConfig::default(),
            spt_entries: 128,
            acc_switch_threshold: 0.5,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct SptEntry {
    covp: BitPattern,
    accp: BitPattern,
    accp_valid: bool,
    /// 2-bit usefulness measure for CovP (paper's quartile counters,
    /// reduced to saturating up/down).
    covp_measure: u8,
    valid: bool,
}

/// The DSPatch prefetcher.
#[derive(Debug, Clone)]
pub struct DsPatch {
    cfg: DsPatchConfig,
    capture: PatternCapture,
    spt: Vec<SptEntry>,
    replay: ReplayQueue,
    /// Sliding usefulness window: (useful, useless) decayed counters.
    useful: u32,
    useless: u32,
    /// Latest DRAM bandwidth-utilization sample from the simulator
    /// (`None` until the first sample arrives; then it replaces the
    /// useless-ratio proxy as the CovP/AccP switch signal).
    measured_bw: Option<f64>,
}

impl DsPatch {
    /// Build DSPatch from its configuration.
    pub fn new(cfg: DsPatchConfig) -> Self {
        assert!(cfg.spt_entries.is_power_of_two(), "SPT entries must be a power of two");
        let len = cfg.capture.geometry.lines_per_region();
        DsPatch {
            capture: PatternCapture::new(cfg.capture.clone()),
            spt: vec![
                SptEntry {
                    covp: BitPattern::new(len),
                    accp: BitPattern::new(len),
                    accp_valid: false,
                    covp_measure: 2,
                    valid: false,
                };
                cfg.spt_entries
            ],
            replay: ReplayQueue::new(128),
            useful: 0,
            useless: 0,
            measured_bw: None,
            cfg,
        }
    }

    fn slot(&self, pc: Pc) -> usize {
        (pc.hash_bits(self.cfg.spt_entries.trailing_zeros()) as usize)
            & (self.cfg.spt_entries - 1)
    }

    fn train(&mut self, captured: &CapturedPattern) {
        let anchored = captured.anchored();
        let len = anchored.len();
        let slot = self.slot(captured.trigger_pc);
        let e = &mut self.spt[slot];
        if !e.valid {
            *e = SptEntry {
                covp: anchored,
                accp: anchored,
                accp_valid: true,
                covp_measure: 2,
                valid: true,
            };
            return;
        }
        // OR into CovP; AND into AccP — the dual spatial patterns.
        e.covp = BitPattern::from_bits(e.covp.bits() | anchored.bits(), len);
        if e.accp_valid {
            e.accp = BitPattern::from_bits(e.accp.bits() & anchored.bits(), len);
        } else {
            e.accp = anchored;
            e.accp_valid = true;
        }
        // CovP that has grown useless gets reset (the paper's measure-
        // driven CovP rebuild).
        if e.covp_measure == 0 {
            e.covp = anchored;
            e.covp_measure = 2;
        }
    }

    fn useless_ratio(&self) -> f64 {
        let total = self.useful + self.useless;
        if total == 0 {
            0.0
        } else {
            f64::from(self.useless) / f64::from(total)
        }
    }

    /// The bandwidth-pressure signal driving CovP/AccP selection: the
    /// measured DRAM utilization when the simulator provides one, else
    /// the useless-ratio proxy.
    fn pressure(&self) -> f64 {
        self.measured_bw.unwrap_or_else(|| self.useless_ratio())
    }
}

impl Default for DsPatch {
    fn default() -> Self {
        DsPatch::new(DsPatchConfig::default())
    }
}

impl Introspect for DsPatch {
    fn gauges(&self, out: &mut Vec<pmp_prefetch::Gauge>) {
        let occ = self.spt.iter().filter(|e| e.valid).count();
        out.push(pmp_prefetch::Gauge::new(
            "spt_occupancy",
            occ as f64 / self.spt.len() as f64,
        ));
        out.push(pmp_prefetch::Gauge::new("bw_pressure", self.pressure()));
        out.push(pmp_prefetch::Gauge::new(
            "bw_measured",
            f64::from(u8::from(self.measured_bw.is_some())),
        ));
    }
}

impl Prefetcher for DsPatch {
    fn name(&self) -> &'static str {
        "dspatch"
    }

    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<PrefetchRequest>) {
        let geom = self.capture.geometry();
        let line = info.access.addr.line();
        let outcome = self.capture.on_load(info.access.pc, line);
        if let Some(f) = outcome.flushed {
            self.train(&f);
        }
        let Some(trig) = outcome.trigger else {
            self.replay.issue(info.pq_free, out);
            return;
        };
        let slot = self.slot(trig.pc);
        let use_accp = self.pressure() > self.cfg.acc_switch_threshold;
        let e = &mut self.spt[slot];
        if !e.valid {
            self.replay.issue(info.pq_free, out);
            return;
        }
        let pattern = if use_accp && e.accp_valid { e.accp } else { e.covp };
        if use_accp {
            // Using AccP counts against CovP's usefulness measure.
            e.covp_measure = e.covp_measure.saturating_sub(1);
        } else if e.covp_measure < 3 {
            e.covp_measure += 1;
        }
        let len = geom.lines_per_region() as u16;
        let replayed_accp = use_accp && e.accp_valid;
        let reqs: Vec<PrefetchRequest> = pattern
            .iter_set()
            .filter(|&o| o != 0)
            .enumerate()
            .map(|(i, anch)| {
                let abs = ((u16::from(trig.offset) + u16::from(anch)) % len) as u8;
                PrefetchRequest::with_provenance(
                    geom.line_of(trig.region, abs),
                    CacheLevel::L1D,
                    pmp_types::Provenance::at(
                        pmp_types::Origin::DsPatch { accp: replayed_accp },
                        i,
                    ),
                )
            })
            .collect();
        self.replay.push_all(reqs);
        self.replay.issue(info.pq_free, out);
    }

    fn on_evict(&mut self, info: &EvictInfo) {
        if let Some(captured) = self.capture.on_evict(info.line) {
            self.train(&captured);
        }
    }

    fn on_feedback(&mut self, _line: LineAddr, kind: FeedbackKind) {
        match kind {
            FeedbackKind::Useful => self.useful += 1,
            FeedbackKind::Useless => self.useless += 1,
            FeedbackKind::Dropped => {}
        }
        // Decay the window so the bandwidth proxy tracks recent history.
        if self.useful + self.useless > 1024 {
            self.useful /= 2;
            self.useless /= 2;
        }
    }

    fn on_bandwidth(&mut self, utilization: f64) {
        self.measured_bw = Some(utilization.clamp(0.0, 1.0));
    }

    /// Capture + SPT (CovP 64 + AccP 64 + measure 2 + valid 1 per
    /// entry): ≈3.3KB at defaults, near the paper's 3.6KB.
    fn storage_bits(&self) -> u64 {
        let len = u64::from(self.capture.geometry().lines_per_region());
        self.cfg.capture.storage_bits() + self.cfg.spt_entries as u64 * (2 * len + 3)
    }

    /// Serialize the capture framework, the dual-pattern SPT, the
    /// pending replay queue, and the feedback window into named
    /// sections.
    fn save_state(&self) -> Result<StateImage, SnapshotError> {
        let fp = config_fingerprint(&format!("{:?}", self.cfg));
        let mut img = StateImage::new(self.name(), fp);

        let mut w = ByteWriter::new();
        self.capture.encode_state(&mut w);
        img.push_section("capture", w.into_bytes());

        let mut w = ByteWriter::new();
        w.put_u32(self.spt.len() as u32);
        for e in &self.spt {
            w.put_u64(e.covp.bits());
            w.put_u64(e.accp.bits());
            w.put_bool(e.accp_valid);
            w.put_u8(e.covp_measure);
            w.put_bool(e.valid);
        }
        img.push_section("spt", w.into_bytes());

        let mut w = ByteWriter::new();
        w.put_u32(self.replay.capacity() as u32);
        w.put_u32(self.replay.len() as u32);
        for r in self.replay.iter() {
            w.put_u64(r.line.0);
            w.put_u8(match r.fill_level {
                CacheLevel::L1D => 1,
                CacheLevel::L2C => 2,
                CacheLevel::Llc => 3,
            });
        }
        img.push_section("replay", w.into_bytes());

        let mut w = ByteWriter::new();
        w.put_u32(self.useful);
        w.put_u32(self.useless);
        match self.measured_bw {
            Some(bw) => {
                w.put_bool(true);
                w.put_f64(bw);
            }
            None => {
                w.put_bool(false);
                w.put_f64(0.0);
            }
        }
        img.push_section("feedback", w.into_bytes());
        Ok(img)
    }

    /// Restore state saved by an identically configured DSPatch. All
    /// sections decode into temporaries first; pattern bits, measure
    /// counters, queue sizes, and the bandwidth sample are all
    /// bounds-checked against the configuration.
    fn load_state(&mut self, image: &StateImage) -> Result<(), SnapshotError> {
        if image.kind != self.name() {
            return Err(SnapshotError::KindMismatch {
                found: image.kind.clone(),
                expected: self.name().to_string(),
            });
        }
        let fp = config_fingerprint(&format!("{:?}", self.cfg));
        if image.config_fingerprint != fp {
            return Err(SnapshotError::ConfigMismatch {
                found: image.config_fingerprint,
                expected: fp,
            });
        }
        let len = self.cfg.capture.geometry.lines_per_region();

        let mut r = ByteReader::new(image.section("capture")?, "section capture");
        let capture = PatternCapture::decode_state(&mut r, &self.cfg.capture, "section capture")?;
        r.finish()?;

        let ctx = "section spt";
        let mut r = ByteReader::new(image.section("spt")?, ctx);
        let count = r.take_u32()? as usize;
        if count != self.cfg.spt_entries {
            return Err(SnapshotError::corrupt(
                ctx,
                format!("SPT entry count {count}, expected {}", self.cfg.spt_entries),
            ));
        }
        let mut spt = Vec::with_capacity(count);
        for _ in 0..count {
            let covp_bits = r.take_u64()?;
            let accp_bits = r.take_u64()?;
            for bits in [covp_bits, accp_bits] {
                if len < 64 && bits >> len != 0 {
                    return Err(SnapshotError::corrupt(
                        ctx,
                        format!("pattern bits {bits:#x} exceed length {len}"),
                    ));
                }
            }
            let accp_valid = r.take_bool()?;
            let covp_measure = r.take_u8()?;
            if covp_measure > 3 {
                return Err(SnapshotError::corrupt(
                    ctx,
                    format!("CovP measure {covp_measure} exceeds 2-bit cap"),
                ));
            }
            let valid = r.take_bool()?;
            spt.push(SptEntry {
                covp: BitPattern::from_bits(covp_bits, len),
                accp: BitPattern::from_bits(accp_bits, len),
                accp_valid,
                covp_measure,
                valid,
            });
        }
        r.finish()?;

        let ctx = "section replay";
        let mut r = ByteReader::new(image.section("replay")?, ctx);
        let capacity = r.take_u32()? as usize;
        if capacity != self.replay.capacity() {
            return Err(SnapshotError::corrupt(
                ctx,
                format!("replay capacity {capacity}, expected {}", self.replay.capacity()),
            ));
        }
        let pending = r.take_u32()? as usize;
        if pending > capacity {
            return Err(SnapshotError::corrupt(
                ctx,
                format!("{pending} pending requests exceed capacity {capacity}"),
            ));
        }
        let mut replay = ReplayQueue::new(capacity);
        for _ in 0..pending {
            let line = LineAddr(r.take_u64()?);
            let level = match r.take_u8()? {
                1 => CacheLevel::L1D,
                2 => CacheLevel::L2C,
                3 => CacheLevel::Llc,
                t => {
                    return Err(SnapshotError::corrupt(
                        ctx,
                        format!("unknown fill level tag {t}"),
                    ))
                }
            };
            replay.push_all([PrefetchRequest::new(line, level)]);
        }
        r.finish()?;

        let ctx = "section feedback";
        let mut r = ByteReader::new(image.section("feedback")?, ctx);
        let useful = r.take_u32()?;
        let useless = r.take_u32()?;
        if u64::from(useful) + u64::from(useless) > 1024 {
            return Err(SnapshotError::corrupt(
                ctx,
                format!("feedback window {useful}+{useless} exceeds the decay bound"),
            ));
        }
        let has_bw = r.take_bool()?;
        let bw = r.take_f64()?;
        if has_bw && !(0.0..=1.0).contains(&bw) {
            return Err(SnapshotError::corrupt(
                ctx,
                format!("bandwidth sample {bw} outside 0..=1"),
            ));
        }
        r.finish()?;

        self.capture = capture;
        self.spt = spt;
        self.replay = replay;
        self.useful = useful;
        self.useless = useless;
        self.measured_bw = has_bw.then_some(bw);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_types::{Addr, MemAccess};

    fn access(pc: u64, addr: u64) -> AccessInfo {
        AccessInfo {
            access: MemAccess::load(Pc(pc), Addr(addr)),
            hit: false,
            cycle: 0,
            pq_free: 8,
        }
    }

    fn train_region(d: &mut DsPatch, pc: u64, base: u64, offsets: &[u64]) {
        let mut out = Vec::new();
        d.on_access(&access(pc, base + offsets[0] * 64), &mut out);
        for &o in &offsets[1..] {
            d.on_access(&access(pc, base + o * 64), &mut out);
        }
        d.on_evict(&EvictInfo { line: Addr(base + offsets[0] * 64).line(), cycle: 0 });
    }

    #[test]
    fn covp_is_superset_of_observations() {
        let mut d = DsPatch::default();
        // Two different patterns under the same PC: CovP = union.
        train_region(&mut d, 0x400, 10 * 4096, &[0, 1]);
        train_region(&mut d, 0x400, 11 * 4096, &[0, 2]);
        let mut out = Vec::new();
        d.on_access(&access(0x400, 99 * 4096), &mut out);
        let offs: Vec<u64> = out.iter().map(|r| r.line.0 - 99 * 64).collect();
        assert!(offs.contains(&1) && offs.contains(&2), "OR merge: {offs:?}");
    }

    #[test]
    fn accp_collapses_to_intersection() {
        let mut d = DsPatch::default();
        train_region(&mut d, 0x400, 10 * 4096, &[0, 1, 2]);
        train_region(&mut d, 0x400, 11 * 4096, &[0, 2, 3]);
        // Force the accuracy path via useless feedback.
        for _ in 0..100 {
            d.on_feedback(LineAddr(1), FeedbackKind::Useless);
        }
        let mut out = Vec::new();
        d.on_access(&access(0x400, 99 * 4096), &mut out);
        let offs: Vec<u64> = out.iter().map(|r| r.line.0 - 99 * 64).collect();
        // AND of {1,2} and {2,3} = {2}.
        assert_eq!(offs, vec![2], "AND merge: {offs:?}");
    }

    #[test]
    fn outliers_poison_and_merge() {
        // The PMP paper's critique: one empty-ish outlier kills AccP.
        let mut d = DsPatch::default();
        train_region(&mut d, 0x400, 10 * 4096, &[0, 1, 2, 3]);
        train_region(&mut d, 0x400, 11 * 4096, &[0, 40]); // outlier
        for _ in 0..100 {
            d.on_feedback(LineAddr(1), FeedbackKind::Useless);
        }
        let mut out = Vec::new();
        d.on_access(&access(0x400, 99 * 4096), &mut out);
        assert!(out.is_empty(), "intersection with an outlier is empty: {out:?}");
    }

    #[test]
    fn measured_bandwidth_overrides_proxy() {
        let mut d = DsPatch::default();
        train_region(&mut d, 0x400, 10 * 4096, &[0, 1, 2]);
        train_region(&mut d, 0x400, 11 * 4096, &[0, 2, 3]);
        // No feedback at all — proxy says pressure 0, CovP path.
        assert_eq!(d.pressure(), 0.0);
        let mut out = Vec::new();
        d.on_access(&access(0x400, 98 * 4096), &mut out);
        let offs: Vec<u64> = out.iter().map(|r| r.line.0 - 98 * 64).collect();
        assert!(offs.contains(&1) && offs.contains(&3), "CovP under low bw: {offs:?}");
        // A high measured-utilization sample flips it to AccP without
        // any useless feedback.
        d.on_bandwidth(0.95);
        assert_eq!(d.pressure(), 0.95);
        out.clear();
        d.on_access(&access(0x400, 99 * 4096), &mut out);
        let offs: Vec<u64> = out.iter().map(|r| r.line.0 - 99 * 64).collect();
        assert_eq!(offs, vec![2], "AccP under measured pressure: {offs:?}");
        // Samples are clamped into 0..=1.
        d.on_bandwidth(7.0);
        assert_eq!(d.pressure(), 1.0);
    }

    #[test]
    fn snapshot_round_trip_continues_bit_identically() {
        let mut trained = DsPatch::default();
        train_region(&mut trained, 0x400, 10 * 4096, &[0, 1, 2]);
        train_region(&mut trained, 0x400, 11 * 4096, &[0, 2, 3]);
        trained.on_bandwidth(0.3);
        for _ in 0..10 {
            trained.on_feedback(LineAddr(1), FeedbackKind::Useless);
        }
        // Leave requests pending in the replay queue mid-flight.
        let mut parked = Vec::new();
        trained.on_access(
            &AccessInfo {
                access: MemAccess::load(Pc(0x400), Addr(50 * 4096)),
                hit: false,
                cycle: 0,
                pq_free: 1,
            },
            &mut parked,
        );
        let img = trained.save_state().expect("save");
        let mut restored = DsPatch::default();
        restored.load_state(&img).expect("load");
        for i in 0..6u64 {
            let mut a = Vec::new();
            let mut b = Vec::new();
            trained.on_access(&access(0x400, (90 + i) * 4096), &mut a);
            restored.on_access(&access(0x400, (90 + i) * 4096), &mut b);
            assert_eq!(a, b, "restored DSPatch must continue bit-identically");
        }
        assert_eq!(restored.save_state().expect("resave"), trained.save_state().expect("resave"));
    }

    #[test]
    fn load_state_rejects_hostile_images() {
        let trained = DsPatch::default();
        let img = trained.save_state().expect("save");
        // Config mismatch.
        let mut other =
            DsPatch::new(DsPatchConfig { spt_entries: 64, ..DsPatchConfig::default() });
        assert_eq!(other.load_state(&img).expect_err("cfg").kind_tag(), "config-mismatch");
        // Forge an over-saturated CovP measure in SPT entry 0
        // (layout: count u32, then covp u64 + accp u64 + accp_valid u8
        // + measure u8 + valid u8 per entry).
        let mut forged = img.clone();
        let spt = forged.sections.iter_mut().find(|s| s.name == "spt").expect("spt");
        spt.bytes[4 + 8 + 8 + 1] = 9;
        let mut fresh = DsPatch::default();
        let err = fresh.load_state(&forged).expect_err("measure bound");
        assert_eq!(err.kind_tag(), "corrupt");
        // Forge a pending-count larger than the queue capacity.
        let mut forged = img.clone();
        let replay = forged.sections.iter_mut().find(|s| s.name == "replay").expect("replay");
        replay.bytes[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = fresh.load_state(&forged).expect_err("pending bound");
        assert_eq!(err.kind_tag(), "corrupt");
    }

    #[test]
    fn storage_near_table_v() {
        let kib = DsPatch::default().storage_bits() as f64 / 8.0 / 1024.0;
        assert!((2.0..5.0).contains(&kib), "DSPatch ≈ 3.6KB, got {kib}");
    }
}
