//! SPP+PPF — Signature Path Prefetcher (Kim et al., MICRO 2016) with
//! Perceptron-based Prefetch Filtering (Bhatia et al., ISCA 2019; the
//! DPC-3 "strong competitor" configuration the PMP paper evaluates).
//!
//! SPP compresses the last few in-page deltas into a 12-bit signature,
//! looks the signature up in a pattern table of per-delta confidence
//! counters, and walks a speculative *lookahead path*, issuing one
//! prefetch per step while the compounded confidence stays above
//! threshold. PPF then filters each proposal through a perceptron over
//! program features, trained online from prefetch-outcome feedback.

use pmp_prefetch::{
    AccessInfo, ByteReader, ByteWriter, EvictInfo, FeedbackKind, Gauge, Introspect,
    PrefetchRequest, Prefetcher, SnapshotError, StateImage,
};
use pmp_types::{config_fingerprint, CacheLevel, LineAddr, Pc, PAGE_BYTES};

const LINES_PER_PAGE: u64 = PAGE_BYTES / 64;

/// SPP+PPF configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SppPpfConfig {
    /// Signature-table entries (per-page tracking).
    pub st_entries: usize,
    /// Pattern-table entries (signature-indexed).
    pub pt_entries: usize,
    /// Delta slots per pattern-table entry.
    pub deltas_per_entry: usize,
    /// Minimum compound path confidence to keep prefetching.
    pub lookahead_threshold: f64,
    /// Confidence at or above which fills target L1D (else L2C).
    pub l1_threshold: f64,
    /// Maximum lookahead depth.
    pub max_depth: usize,
    /// Perceptron weight tables (one per feature) × entries each.
    pub ppf_table_entries: usize,
    /// Perceptron decision threshold.
    pub ppf_threshold: i32,
    /// Entries in the recently-issued table used to recover features at
    /// feedback time.
    pub issued_entries: usize,
}

impl Default for SppPpfConfig {
    /// DPC-3-class sizing (≈48KB, Table V).
    fn default() -> Self {
        SppPpfConfig {
            st_entries: 256,
            pt_entries: 512,
            deltas_per_entry: 4,
            lookahead_threshold: 0.15,
            l1_threshold: 0.5,
            max_depth: 12,
            ppf_table_entries: 2048,
            ppf_threshold: -2,
            issued_entries: 2048,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct StEntry {
    page: u64,
    last_offset: u8,
    signature: u16,
    valid: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct DeltaSlot {
    delta: i8,
    c_delta: u8,
}

#[derive(Debug, Clone, Copy, Default)]
struct PtEntry {
    c_sig: u8,
    slots: [DeltaSlot; 4],
}

/// Number of perceptron feature tables (the DPC-3 PPF uses nine; we
/// keep the seven that exist in our trace vocabulary).
const PPF_FEATURES: usize = 7;

#[derive(Debug, Clone, Copy)]
struct IssuedRecord {
    line: u64,
    features: [usize; PPF_FEATURES],
    valid: bool,
}

/// The SPP+PPF prefetcher.
#[derive(Debug, Clone)]
pub struct SppPpf {
    cfg: SppPpfConfig,
    st: Vec<StEntry>,
    pt: Vec<PtEntry>,
    weights: Vec<[i8; PPF_FEATURES]>,
    issued: Vec<IssuedRecord>,
    issued_next: usize,
}

impl SppPpf {
    /// Build SPP+PPF from its configuration.
    pub fn new(cfg: SppPpfConfig) -> Self {
        assert!(cfg.pt_entries.is_power_of_two() && cfg.st_entries.is_power_of_two());
        assert!(cfg.deltas_per_entry <= 4, "at most 4 delta slots");
        SppPpf {
            st: vec![StEntry::default(); cfg.st_entries],
            pt: vec![PtEntry::default(); cfg.pt_entries],
            weights: vec![[0i8; PPF_FEATURES]; cfg.ppf_table_entries],
            issued: vec![
                IssuedRecord { line: 0, features: [0; PPF_FEATURES], valid: false };
                cfg.issued_entries
            ],
            issued_next: 0,
            cfg,
        }
    }

    fn sig_update(sig: u16, delta: i8) -> u16 {
        ((sig << 3) ^ (delta as u16 & 0x3f)) & 0xfff
    }

    fn pt_index(&self, sig: u16) -> usize {
        (sig as usize) & (self.cfg.pt_entries - 1)
    }

    fn train_pt(&mut self, sig: u16, delta: i8) {
        let idx = self.pt_index(sig);
        let e = &mut self.pt[idx];
        if e.c_sig == u8::MAX {
            e.c_sig /= 2;
            for s in &mut e.slots {
                s.c_delta /= 2;
            }
        }
        e.c_sig += 1;
        if let Some(s) = e.slots.iter_mut().find(|s| s.c_delta > 0 && s.delta == delta) {
            s.c_delta = s.c_delta.saturating_add(1);
            return;
        }
        // Allocate the weakest slot.
        let s = e
            .slots
            .iter_mut()
            .take(self.cfg.deltas_per_entry)
            .min_by_key(|s| s.c_delta)
            .expect("non-empty slots");
        *s = DeltaSlot { delta, c_delta: 1 };
    }

    /// Best (delta, confidence) for a signature.
    fn best_delta(&self, sig: u16) -> Option<(i8, f64)> {
        let e = &self.pt[self.pt_index(sig)];
        if e.c_sig == 0 {
            return None;
        }
        e.slots
            .iter()
            .take(self.cfg.deltas_per_entry)
            .filter(|s| s.c_delta > 0)
            .max_by_key(|s| s.c_delta)
            .map(|s| (s.delta, f64::from(s.c_delta) / f64::from(e.c_sig)))
    }

    /// PPF features for a proposed prefetch.
    fn features(
        &self,
        pc: Pc,
        page: u64,
        offset: u8,
        delta: i8,
        depth: usize,
        sig: u16,
    ) -> [usize; PPF_FEATURES] {
        let m = self.cfg.ppf_table_entries;
        [
            (pc.0 as usize) % m,
            ((pc.0 >> 2) as usize ^ depth) % m,
            usize::from(offset) % m,
            (delta as i64 + 64) as usize % m,
            (sig as usize) % m,
            ((page as usize) ^ (pc.0 as usize)) % m,
            (usize::from(offset) ^ (((delta as i64 + 64) as usize) * 64)) % m,
        ]
    }

    fn perceptron_sum(&self, features: &[usize; PPF_FEATURES]) -> i32 {
        features
            .iter()
            .enumerate()
            .map(|(f, &idx)| i32::from(self.weights[idx][f]))
            .sum()
    }

    fn record_issue(&mut self, line: u64, features: [usize; PPF_FEATURES]) {
        let slot = self.issued_next;
        self.issued[slot] = IssuedRecord { line, features, valid: true };
        self.issued_next = (self.issued_next + 1) % self.issued.len();
    }

    fn update_weights(&mut self, features: &[usize; PPF_FEATURES], delta: i8) {
        for (f, &idx) in features.iter().enumerate() {
            let w = &mut self.weights[idx][f];
            *w = w.saturating_add(delta).clamp(-32, 31);
        }
    }
}

impl Default for SppPpf {
    fn default() -> Self {
        SppPpf::new(SppPpfConfig::default())
    }
}

impl Introspect for SppPpf {
    fn gauges(&self, out: &mut Vec<Gauge>) {
        let st_occ = self.st.iter().filter(|e| e.valid).count();
        let pt_occ = self.pt.iter().filter(|e| e.c_sig > 0).count();
        out.push(Gauge::new("st_occupancy", st_occ as f64 / self.st.len() as f64));
        out.push(Gauge::new("pt_occupancy", pt_occ as f64 / self.pt.len() as f64));
        // Mean signature confidence across trained PT entries — a proxy
        // for how deep the lookahead walk can compound before hitting
        // the threshold.
        let trained: Vec<&PtEntry> = self.pt.iter().filter(|e| e.c_sig > 0).collect();
        let mean_best = if trained.is_empty() {
            0.0
        } else {
            trained
                .iter()
                .map(|e| {
                    let best =
                        e.slots.iter().map(|s| u32::from(s.c_delta)).max().unwrap_or(0);
                    f64::from(best) / f64::from(e.c_sig)
                })
                .sum::<f64>()
                / trained.len() as f64
        };
        out.push(Gauge::new("pt_mean_confidence", mean_best));
        // Perceptron state: fraction of non-zero weights and the count
        // of prefetches awaiting outcome feedback.
        let nonzero: usize = self
            .weights
            .iter()
            .map(|row| row.iter().filter(|&&w| w != 0).count())
            .sum();
        let total = self.weights.len() * PPF_FEATURES;
        out.push(Gauge::new("ppf_nonzero_weights", nonzero as f64 / total as f64));
        out.push(Gauge::new(
            "ppf_inflight",
            self.issued.iter().filter(|r| r.valid).count() as f64,
        ));
    }
}

impl Prefetcher for SppPpf {
    fn name(&self) -> &'static str {
        "spp-ppf"
    }

    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<PrefetchRequest>) {
        let line = info.access.addr.line();
        let page = line.0 / LINES_PER_PAGE;
        let offset = (line.0 % LINES_PER_PAGE) as u8;
        let pc = info.access.pc;

        // --- Training: update the signature path for this page.
        let st_idx = (page as usize) & (self.cfg.st_entries - 1);
        let st = self.st[st_idx];
        let mut sig = 0u16;
        if st.valid && st.page == page {
            let delta = offset as i16 - st.last_offset as i16;
            if delta != 0 {
                let delta = delta as i8;
                self.train_pt(st.signature, delta);
                sig = Self::sig_update(st.signature, delta);
            } else {
                sig = st.signature;
            }
        }
        self.st[st_idx] = StEntry { page, last_offset: offset, signature: sig, valid: true };

        // --- Prediction: lookahead walk from the current signature.
        let mut cur_off = i16::from(offset);
        let mut cur_sig = sig;
        let mut conf = 1.0f64;
        for depth in 0..self.cfg.max_depth {
            let Some((delta, c)) = self.best_delta(cur_sig) else { break };
            conf *= c;
            if conf < self.cfg.lookahead_threshold {
                break;
            }
            cur_off += i16::from(delta);
            if !(0..LINES_PER_PAGE as i16).contains(&cur_off) {
                break; // SPP does not cross pages (without the GHR trick)
            }
            let target = LineAddr(page * LINES_PER_PAGE + cur_off as u64);
            // --- PPF filter.
            let features = self.features(pc, page, cur_off as u8, delta, depth, cur_sig);
            let sum = self.perceptron_sum(&features);
            if sum >= self.cfg.ppf_threshold {
                let level = if conf >= self.cfg.l1_threshold {
                    CacheLevel::L1D
                } else {
                    CacheLevel::L2C
                };
                out.push(PrefetchRequest::with_provenance(
                    target,
                    level,
                    pmp_types::Provenance::at(
                        pmp_types::Origin::Spp { signature: cur_sig, depth: depth as u8 },
                        out.len(),
                    ),
                ));
                self.record_issue(target.0, features);
            }
            cur_sig = Self::sig_update(cur_sig, delta);
        }
    }

    fn on_evict(&mut self, _info: &EvictInfo) {}

    fn on_feedback(&mut self, line: LineAddr, kind: FeedbackKind) {
        let delta = match kind {
            FeedbackKind::Useful => 1,
            FeedbackKind::Useless => -1,
            FeedbackKind::Dropped => return,
        };
        if let Some(i) = self.issued.iter().position(|r| r.valid && r.line == line.0) {
            let features = self.issued[i].features;
            self.issued[i].valid = false;
            self.update_weights(&features, delta);
        }
    }

    /// ST + PT + perceptron tables + issued-record table ≈ 48KB class.
    fn storage_bits(&self) -> u64 {
        let st = self.cfg.st_entries as u64 * (16 + 6 + 12 + 1);
        let pt = self.cfg.pt_entries as u64 * (8 + 4 * (7 + 8));
        let ppf = self.cfg.ppf_table_entries as u64 * (PPF_FEATURES as u64 * 6);
        let issued = self.cfg.issued_entries as u64 * (32 + PPF_FEATURES as u64 * 10 + 1);
        st + pt + ppf + issued
    }

    /// Serialize the signature table, pattern table, perceptron
    /// weights, and in-flight issued records into named sections.
    fn save_state(&self) -> Result<StateImage, SnapshotError> {
        let fp = config_fingerprint(&format!("{:?}", self.cfg));
        let mut img = StateImage::new(self.name(), fp);

        let mut w = ByteWriter::new();
        w.put_u32(self.st.len() as u32);
        for e in &self.st {
            w.put_u64(e.page);
            w.put_u8(e.last_offset);
            w.put_u16(e.signature);
            w.put_bool(e.valid);
        }
        img.push_section("st", w.into_bytes());

        let mut w = ByteWriter::new();
        w.put_u32(self.pt.len() as u32);
        for e in &self.pt {
            w.put_u8(e.c_sig);
            for s in &e.slots {
                w.put_u8(s.delta as u8);
                w.put_u8(s.c_delta);
            }
        }
        img.push_section("pt", w.into_bytes());

        let mut w = ByteWriter::new();
        w.put_u32(self.weights.len() as u32);
        for row in &self.weights {
            for &v in row {
                w.put_u8(v as u8);
            }
        }
        img.push_section("weights", w.into_bytes());

        let mut w = ByteWriter::new();
        w.put_u32(self.issued.len() as u32);
        w.put_u32(self.issued_next as u32);
        for r in &self.issued {
            w.put_u64(r.line);
            for &f in &r.features {
                w.put_u64(f as u64);
            }
            w.put_bool(r.valid);
        }
        img.push_section("issued", w.into_bytes());
        Ok(img)
    }

    /// Restore state saved by an identically configured SPP+PPF. All
    /// sections decode into temporaries first; every table index and
    /// counter is bounds-checked so a hostile image cannot plant an
    /// out-of-range perceptron feature or a signature wider than the
    /// 12-bit path.
    fn load_state(&mut self, image: &StateImage) -> Result<(), SnapshotError> {
        if image.kind != self.name() {
            return Err(SnapshotError::KindMismatch {
                found: image.kind.clone(),
                expected: self.name().to_string(),
            });
        }
        let fp = config_fingerprint(&format!("{:?}", self.cfg));
        if image.config_fingerprint != fp {
            return Err(SnapshotError::ConfigMismatch {
                found: image.config_fingerprint,
                expected: fp,
            });
        }

        let ctx = "section st";
        let mut r = ByteReader::new(image.section("st")?, ctx);
        let count = r.take_u32()? as usize;
        if count != self.cfg.st_entries {
            return Err(SnapshotError::corrupt(
                ctx,
                format!("ST entry count {count}, expected {}", self.cfg.st_entries),
            ));
        }
        let mut st = Vec::with_capacity(count);
        for _ in 0..count {
            let e = StEntry {
                page: r.take_u64()?,
                last_offset: r.take_u8()?,
                signature: r.take_u16()?,
                valid: r.take_bool()?,
            };
            if e.valid && u64::from(e.last_offset) >= LINES_PER_PAGE {
                return Err(SnapshotError::corrupt(
                    ctx,
                    format!("last offset {} outside the page", e.last_offset),
                ));
            }
            if e.signature > 0xfff {
                return Err(SnapshotError::corrupt(
                    ctx,
                    format!("signature {:#x} wider than 12 bits", e.signature),
                ));
            }
            st.push(e);
        }
        r.finish()?;

        let ctx = "section pt";
        let mut r = ByteReader::new(image.section("pt")?, ctx);
        let count = r.take_u32()? as usize;
        if count != self.cfg.pt_entries {
            return Err(SnapshotError::corrupt(
                ctx,
                format!("PT entry count {count}, expected {}", self.cfg.pt_entries),
            ));
        }
        let mut pt = Vec::with_capacity(count);
        for _ in 0..count {
            let c_sig = r.take_u8()?;
            let mut slots = [DeltaSlot::default(); 4];
            for (i, s) in slots.iter_mut().enumerate() {
                s.delta = r.take_u8()? as i8;
                s.c_delta = r.take_u8()?;
                if s.c_delta > c_sig {
                    return Err(SnapshotError::corrupt(
                        ctx,
                        format!("delta confidence {} exceeds c_sig {c_sig}", s.c_delta),
                    ));
                }
                if i >= self.cfg.deltas_per_entry && s.c_delta != 0 {
                    return Err(SnapshotError::corrupt(
                        ctx,
                        format!("trained slot {i} beyond deltas_per_entry"),
                    ));
                }
            }
            pt.push(PtEntry { c_sig, slots });
        }
        r.finish()?;

        let ctx = "section weights";
        let mut r = ByteReader::new(image.section("weights")?, ctx);
        let count = r.take_u32()? as usize;
        if count != self.cfg.ppf_table_entries {
            return Err(SnapshotError::corrupt(
                ctx,
                format!("weight rows {count}, expected {}", self.cfg.ppf_table_entries),
            ));
        }
        let mut weights = Vec::with_capacity(count);
        for _ in 0..count {
            let mut row = [0i8; PPF_FEATURES];
            for v in &mut row {
                *v = r.take_u8()? as i8;
                if *v < -32 || *v > 31 {
                    return Err(SnapshotError::corrupt(
                        ctx,
                        format!("perceptron weight {v} outside [-32, 31]"),
                    ));
                }
            }
            weights.push(row);
        }
        r.finish()?;

        let ctx = "section issued";
        let mut r = ByteReader::new(image.section("issued")?, ctx);
        let count = r.take_u32()? as usize;
        if count != self.cfg.issued_entries {
            return Err(SnapshotError::corrupt(
                ctx,
                format!("issued entries {count}, expected {}", self.cfg.issued_entries),
            ));
        }
        let issued_next = r.take_u32()? as usize;
        if issued_next >= count {
            return Err(SnapshotError::corrupt(
                ctx,
                format!("issued cursor {issued_next} outside table of {count}"),
            ));
        }
        let mut issued = Vec::with_capacity(count);
        for _ in 0..count {
            let line = r.take_u64()?;
            let mut features = [0usize; PPF_FEATURES];
            for f in &mut features {
                let v = r.take_u64()?;
                if v >= self.cfg.ppf_table_entries as u64 {
                    return Err(SnapshotError::corrupt(
                        ctx,
                        format!("feature index {v} outside the weight table"),
                    ));
                }
                *f = v as usize;
            }
            let valid = r.take_bool()?;
            issued.push(IssuedRecord { line, features, valid });
        }
        r.finish()?;

        self.st = st;
        self.pt = pt;
        self.weights = weights;
        self.issued = issued;
        self.issued_next = issued_next;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_types::{Addr, MemAccess};

    fn access(pc: u64, addr: u64) -> AccessInfo {
        AccessInfo {
            access: MemAccess::load(Pc(pc), Addr(addr)),
            hit: false,
            cycle: 0,
            pq_free: 8,
        }
    }

    #[test]
    fn learns_constant_stride_path() {
        let mut spp = SppPpf::default();
        let mut out = Vec::new();
        // Stride of 2 lines within pages, repeated over many pages.
        for p in 0..30u64 {
            for i in 0..20u64 {
                out.clear();
                spp.on_access(&access(0x400, p * 4096 + (i * 2 % 64) * 64), &mut out);
            }
        }
        // After training, a fresh page walk should prefetch ahead.
        out.clear();
        let mut total = 0;
        for i in 0..6u64 {
            out.clear();
            spp.on_access(&access(0x400, 99 * 4096 + i * 2 * 64), &mut out);
            total += out.len();
        }
        assert!(total > 0, "SPP must prefetch on a learned stride path");
        // Targets follow the +2 delta.
        if let Some(r) = out.first() {
            assert_eq!((r.line.0 - 99 * 64) % 2, 0, "{out:?}");
        }
    }

    #[test]
    fn lookahead_depth_bounded() {
        let mut spp = SppPpf::default();
        let mut out = Vec::new();
        for p in 0..50u64 {
            for i in 0..60u64 {
                out.clear();
                spp.on_access(&access(0x400, p * 4096 + i * 64), &mut out);
            }
        }
        assert!(out.len() <= SppPpfConfig::default().max_depth);
    }

    #[test]
    fn ppf_learns_to_reject() {
        let mut spp = SppPpf::default();
        let mut out = Vec::new();
        // Train a stride so SPP proposes prefetches.
        for p in 0..20u64 {
            for i in 0..30u64 {
                out.clear();
                spp.on_access(&access(0x400, p * 4096 + (i % 64) * 64), &mut out);
            }
        }
        assert!(!out.is_empty(), "SPP should propose before feedback");
        // Hammer every issued prefetch with negative feedback.
        for _ in 0..400 {
            out.clear();
            spp.on_access(&access(0x400, 77 * 4096), &mut out);
            for r in out.clone() {
                spp.on_feedback(r.line, FeedbackKind::Useless);
            }
        }
        out.clear();
        spp.on_access(&access(0x400, 88 * 4096), &mut out);
        assert!(
            out.is_empty(),
            "perceptron must learn to filter useless prefetches: {out:?}"
        );
    }

    #[test]
    fn introspection_tracks_training() {
        let mut spp = SppPpf::default();
        let gauge = |spp: &SppPpf, name: &str| -> f64 {
            let mut g = Vec::new();
            spp.gauges(&mut g);
            g.iter().find(|x| x.name == name).unwrap_or_else(|| panic!("missing {name}")).value
        };
        assert_eq!(gauge(&spp, "st_occupancy"), 0.0);
        assert_eq!(gauge(&spp, "pt_occupancy"), 0.0);
        let mut out = Vec::new();
        for p in 0..20u64 {
            for i in 0..30u64 {
                out.clear();
                spp.on_access(&access(0x400, p * 4096 + (i % 64) * 64), &mut out);
            }
        }
        assert!(gauge(&spp, "st_occupancy") > 0.0);
        assert!(gauge(&spp, "pt_occupancy") > 0.0);
        assert!(gauge(&spp, "pt_mean_confidence") > 0.0);
        assert!(gauge(&spp, "ppf_inflight") > 0.0, "lookahead issues were recorded");
        // Feedback flips perceptron weights away from zero.
        for r in out.clone() {
            spp.on_feedback(r.line, FeedbackKind::Useless);
        }
        assert!(gauge(&spp, "ppf_nonzero_weights") > 0.0);
    }

    #[test]
    fn snapshot_round_trip_continues_bit_identically() {
        let mut trained = SppPpf::default();
        let mut out = Vec::new();
        for p in 0..20u64 {
            for i in 0..30u64 {
                out.clear();
                trained.on_access(&access(0x400, p * 4096 + (i * 2 % 64) * 64), &mut out);
            }
        }
        for r in out.clone() {
            trained.on_feedback(r.line, FeedbackKind::Useful);
        }
        let img = trained.save_state().expect("save");
        let mut restored = SppPpf::default();
        restored.load_state(&img).expect("load");
        for i in 0..10u64 {
            let mut a = Vec::new();
            let mut b = Vec::new();
            trained.on_access(&access(0x400, 99 * 4096 + i * 2 * 64), &mut a);
            restored.on_access(&access(0x400, 99 * 4096 + i * 2 * 64), &mut b);
            assert_eq!(a, b, "restored SPP must continue bit-identically");
        }
        assert_eq!(restored.save_state().expect("resave"), trained.save_state().expect("resave"));
    }

    #[test]
    fn load_state_rejects_hostile_images() {
        let trained = SppPpf::default();
        let img = trained.save_state().expect("save");

        // Config mismatch.
        let mut other = SppPpf::new(SppPpfConfig { max_depth: 4, ..SppPpfConfig::default() });
        assert_eq!(other.load_state(&img).expect_err("cfg").kind_tag(), "config-mismatch");

        // Kind mismatch.
        let mut wrong_kind = img.clone();
        wrong_kind.kind = "pmp".to_string();
        let mut fresh = SppPpf::default();
        assert_eq!(
            fresh.load_state(&wrong_kind).expect_err("kind").kind_tag(),
            "kind-mismatch"
        );

        // Forge an out-of-range perceptron feature index: decoding must
        // reject it before any weight lookup could index out of bounds.
        let mut forged = img.clone();
        let issued = forged
            .sections
            .iter_mut()
            .find(|s| s.name == "issued")
            .expect("issued section");
        // Layout: count u32 + cursor u32, then per record line u64 +
        // features. Overwrite record 0's feature 0 with u64::MAX.
        issued.bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = fresh.load_state(&forged).expect_err("feature bounds");
        assert_eq!(err.kind_tag(), "corrupt");
        assert!(err.to_string().contains("feature index"), "{err}");
    }

    #[test]
    fn storage_in_table_v_class() {
        let kib = SppPpf::default().storage_bits() / 8 / 1024;
        assert!((10..64).contains(&kib), "SPP+PPF tens of KB, got {kib}");
    }

    #[test]
    fn stays_within_page() {
        let mut spp = SppPpf::default();
        let mut out = Vec::new();
        for p in 0..30u64 {
            for i in 0..64u64 {
                out.clear();
                spp.on_access(&access(0x400, p * 4096 + i * 64), &mut out);
            }
        }
        // At the page edge, no cross-page targets.
        out.clear();
        spp.on_access(&access(0x400, 99 * 4096 + 63 * 64), &mut out);
        assert!(out.iter().all(|r| r.line.0 / 64 == 99), "{out:?}");
    }
}
