//! Sandbox Prefetcher (Pugsley et al., HPCA 2014) — the paper's other
//! constant-stride comparator: candidate offsets are evaluated with
//! *fake* prefetches recorded in a Bloom filter; offsets whose fake
//! prefetches keep getting demanded graduate to real prefetching.

use pmp_prefetch::{AccessInfo, EvictInfo, Introspect, PrefetchRequest, Prefetcher};
use pmp_types::{CacheLevel, LineAddr, PAGE_BYTES};

const LINES_PER_PAGE: u64 = PAGE_BYTES / 64;

/// Candidate offsets evaluated round-robin (±1..±8, as published).
const CANDIDATES: [i64; 16] = [1, -1, 2, -2, 3, -3, 4, -4, 5, -5, 6, -6, 7, -7, 8, -8];

/// Sandbox configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SandboxConfig {
    /// Bloom filter size in bits.
    pub bloom_bits: usize,
    /// Accesses per candidate evaluation period.
    pub period: u32,
    /// Score (sandbox hits per period) required to prefetch degree 1;
    /// multiples unlock deeper degrees (the published cutoffs).
    pub score_step: u32,
    /// Maximum real prefetch degree.
    pub max_degree: u32,
}

impl Default for SandboxConfig {
    fn default() -> Self {
        SandboxConfig { bloom_bits: 2048, period: 256, score_step: 64, max_degree: 4 }
    }
}

/// The Sandbox prefetcher.
#[derive(Debug, Clone)]
pub struct Sandbox {
    cfg: SandboxConfig,
    bloom: Vec<bool>,
    candidate: usize,
    accesses_in_period: u32,
    score: u32,
    /// Last completed score per candidate (drives real prefetching).
    final_scores: [u32; CANDIDATES.len()],
}

impl Sandbox {
    /// Build Sandbox from its configuration.
    pub fn new(cfg: SandboxConfig) -> Self {
        assert!(cfg.bloom_bits.is_power_of_two(), "bloom size must be a power of two");
        Sandbox {
            bloom: vec![false; cfg.bloom_bits],
            candidate: 0,
            accesses_in_period: 0,
            score: 0,
            final_scores: [0; CANDIDATES.len()],
            cfg,
        }
    }

    fn bloom_slots(&self, line: u64) -> (usize, usize) {
        let mask = self.cfg.bloom_bits - 1;
        let h1 = (line ^ (line >> 11)) as usize & mask;
        let h2 = (line.wrapping_mul(0x9e3779b97f4a7c15) >> 40) as usize & mask;
        (h1, h2)
    }

    fn bloom_add(&mut self, line: u64) {
        let (a, b) = self.bloom_slots(line);
        self.bloom[a] = true;
        self.bloom[b] = true;
    }

    fn bloom_test(&self, line: u64) -> bool {
        let (a, b) = self.bloom_slots(line);
        self.bloom[a] && self.bloom[b]
    }

    fn next_period(&mut self) {
        self.final_scores[self.candidate] = self.score;
        self.score = 0;
        self.accesses_in_period = 0;
        self.bloom.fill(false);
        self.candidate = (self.candidate + 1) % CANDIDATES.len();
    }
}

impl Default for Sandbox {
    fn default() -> Self {
        Sandbox::new(SandboxConfig::default())
    }
}

impl Introspect for Sandbox {}

impl Prefetcher for Sandbox {
    fn name(&self) -> &'static str {
        "sandbox"
    }

    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<PrefetchRequest>) {
        let line = info.access.addr.line().0;

        // Sandbox evaluation: did an earlier fake prefetch cover this
        // access?
        if self.bloom_test(line) {
            self.score += 1;
        }
        // Record the fake prefetch of the candidate under evaluation.
        let d = CANDIDATES[self.candidate];
        let fake = line as i64 + d;
        if fake >= 0 && (fake as u64) / LINES_PER_PAGE == line / LINES_PER_PAGE {
            self.bloom_add(fake as u64);
        }
        self.accesses_in_period += 1;
        if self.accesses_in_period >= self.cfg.period {
            self.next_period();
        }

        // Real prefetching with every candidate whose last score
        // cleared the cutoffs; deeper degrees need higher scores.
        for (ci, &cd) in CANDIDATES.iter().enumerate() {
            let degree =
                (self.final_scores[ci] / self.cfg.score_step).min(self.cfg.max_degree);
            for k in 1..=i64::from(degree) {
                let target = line as i64 + cd * k;
                if target >= 0 && (target as u64) / LINES_PER_PAGE == line / LINES_PER_PAGE {
                    out.push(PrefetchRequest::new(LineAddr(target as u64), CacheLevel::L1D));
                }
            }
        }
    }

    fn on_evict(&mut self, _info: &EvictInfo) {}

    /// Bloom filter + per-candidate scores: a few hundred bytes, as
    /// published.
    fn storage_bits(&self) -> u64 {
        self.cfg.bloom_bits as u64 + CANDIDATES.len() as u64 * 9 + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_types::{Addr, MemAccess, Pc};

    fn access(addr: u64) -> AccessInfo {
        AccessInfo {
            access: MemAccess::load(Pc(0x400), Addr(addr)),
            hit: false,
            cycle: 0,
            pq_free: 8,
        }
    }

    #[test]
    fn stream_earns_real_prefetches() {
        let mut sb = Sandbox::default();
        let mut out = Vec::new();
        // A +1 stream across many periods.
        for i in 0..16_384u64 {
            out.clear();
            sb.on_access(&access((i % (1 << 20)) * 64), &mut out);
        }
        // The +1 candidate must have scored, so a fresh access prefetches.
        out.clear();
        sb.on_access(&access(0x200_0000), &mut out);
        assert!(!out.is_empty(), "sandbox must graduate the stream offset");
        assert!(out.iter().any(|r| r.line.0 == (0x200_0000u64 >> 6) + 1), "{out:?}");
    }

    #[test]
    fn random_traffic_earns_nothing() {
        let mut sb = Sandbox::default();
        let mut out = Vec::new();
        let mut x = 7u64;
        for _ in 0..16_384 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            out.clear();
            sb.on_access(&access((x % (1 << 32)) & !63), &mut out);
        }
        out.clear();
        sb.on_access(&access(0x300_0000), &mut out);
        assert!(out.is_empty(), "no candidate should score on random traffic: {out:?}");
    }

    #[test]
    fn degree_scales_with_score() {
        let mut sb = Sandbox::new(SandboxConfig {
            period: 128,
            score_step: 16,
            max_degree: 4,
            ..SandboxConfig::default()
        });
        let mut out = Vec::new();
        for i in 0..8_192u64 {
            out.clear();
            sb.on_access(&access((i % (1 << 20)) * 64), &mut out);
        }
        out.clear();
        sb.on_access(&access(0x400_0000), &mut out);
        // A perfect stream maxes the degree for offset +1.
        let plus_one_line = (0x400_0000u64 >> 6) + 1;
        assert!(out.iter().any(|r| r.line.0 == plus_one_line));
        assert!(out.len() >= 4, "high score unlocks depth: {}", out.len());
    }

    #[test]
    fn storage_is_tiny() {
        assert!(Sandbox::default().storage_bits() / 8 < 1024);
    }
}
