//! Best-Offset Prefetcher (Michaud, HPCA 2016) — the constant-stride
//! state of the art the paper's Related Work discusses: periodically
//! scores a list of candidate offsets against recent requests and
//! prefetches with the single best one.

use pmp_prefetch::{AccessInfo, EvictInfo, Introspect, PrefetchRequest, Prefetcher};
use pmp_types::{CacheLevel, LineAddr, PAGE_BYTES};
use std::collections::VecDeque;

const LINES_PER_PAGE: u64 = PAGE_BYTES / 64;

/// The published candidate-offset list (positive subset: products of
/// small primes up to 64, as in the original paper's spirit).
const OFFSETS: [i64; 26] = [
    1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 25, 27, 30, 32, 36, 40, 45, 48, 50, 54,
    60,
];

/// BOP configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BopConfig {
    /// Recent-requests table entries.
    pub rr_entries: usize,
    /// Score needed to finish a learning phase early.
    pub max_score: u32,
    /// Rounds per learning phase.
    pub max_rounds: u32,
    /// Minimum winning score to prefetch at all (below it, BOP turns
    /// itself off — the original's bad-score mechanism).
    pub bad_score: u32,
    /// Accesses of delay before a request enters the RR table
    /// (modelling fill latency, as the original does in time).
    pub rr_delay: usize,
}

impl Default for BopConfig {
    fn default() -> Self {
        BopConfig { rr_entries: 256, max_score: 31, max_rounds: 100, bad_score: 2, rr_delay: 16 }
    }
}

/// The Best-Offset prefetcher.
#[derive(Debug, Clone)]
pub struct Bop {
    cfg: BopConfig,
    rr: Vec<u64>,
    pending: VecDeque<u64>,
    scores: [u32; OFFSETS.len()],
    candidate: usize,
    round: u32,
    best_offset: Option<i64>,
}

impl Bop {
    /// Build BOP from its configuration.
    pub fn new(cfg: BopConfig) -> Self {
        assert!(cfg.rr_entries.is_power_of_two(), "RR entries must be a power of two");
        Bop {
            rr: vec![u64::MAX; cfg.rr_entries],
            pending: VecDeque::new(),
            scores: [0; OFFSETS.len()],
            candidate: 0,
            round: 0,
            best_offset: Some(1), // start as a next-line prefetcher
            cfg,
        }
    }

    fn rr_insert(&mut self, line: u64) {
        let idx = (line as usize) & (self.cfg.rr_entries - 1);
        self.rr[idx] = line;
    }

    fn rr_contains(&self, line: u64) -> bool {
        self.rr[(line as usize) & (self.cfg.rr_entries - 1)] == line
    }

    fn end_phase(&mut self) {
        // First maximum wins ties: prefer the smallest qualifying offset.
        let (best_i, &best_s) = self
            .scores
            .iter()
            .enumerate()
            .rev()
            .max_by_key(|(_, s)| **s)
            .expect("non-empty");
        self.best_offset = (best_s >= self.cfg.bad_score).then_some(OFFSETS[best_i]);
        self.scores = [0; OFFSETS.len()];
        self.candidate = 0;
        self.round = 0;
    }
}

impl Default for Bop {
    fn default() -> Self {
        Bop::new(BopConfig::default())
    }
}

impl Introspect for Bop {
    fn gauges(&self, out: &mut Vec<pmp_prefetch::Gauge>) {
        use pmp_prefetch::Gauge;
        // best_offset = 0 encodes "turned off" (bad-score shutdown);
        // OFFSETS contains no zero, so the encoding is unambiguous.
        out.push(Gauge::new("bop_best_offset", self.best_offset.unwrap_or(0) as f64));
        out.push(Gauge::new("bop_max_score", f64::from(*self.scores.iter().max().unwrap_or(&0))));
        out.push(Gauge::new("bop_round", f64::from(self.round)));
        let occupied = self.rr.iter().filter(|&&l| l != u64::MAX).count();
        out.push(Gauge::new("bop_rr_occupancy", occupied as f64 / self.rr.len() as f64));
        out.push(Gauge::new("bop_rr_pending", self.pending.len() as f64));
    }
}

impl Prefetcher for Bop {
    fn name(&self) -> &'static str {
        "bop"
    }

    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<PrefetchRequest>) {
        let line = info.access.addr.line().0;

        // Delayed RR insertion models the fill latency: a request only
        // becomes "recent" once its fill would have completed.
        self.pending.push_back(line);
        if self.pending.len() > self.cfg.rr_delay {
            let ready = self.pending.pop_front().expect("non-empty");
            self.rr_insert(ready);
        }

        // Learning: test the current candidate offset against the RR.
        let d = OFFSETS[self.candidate];
        if line >= d as u64 && self.rr_contains(line - d as u64) {
            self.scores[self.candidate] += 1;
            if self.scores[self.candidate] >= self.cfg.max_score {
                self.end_phase();
            }
        }
        self.candidate += 1;
        if self.candidate == OFFSETS.len() {
            self.candidate = 0;
            self.round += 1;
            if self.round >= self.cfg.max_rounds {
                self.end_phase();
            }
        }

        // Prefetch with the current best offset (same page only).
        if let Some(best) = self.best_offset {
            let target = line as i64 + best;
            if target >= 0 && (target as u64) / LINES_PER_PAGE == line / LINES_PER_PAGE {
                out.push(PrefetchRequest::with_provenance(
                    LineAddr(target as u64),
                    CacheLevel::L1D,
                    pmp_types::Provenance::of(pmp_types::Origin::Bop {
                        offset: best.clamp(i64::from(i16::MIN), i64::from(i16::MAX)) as i16,
                    }),
                ));
            }
        }
    }

    fn on_evict(&mut self, _info: &EvictInfo) {}

    /// RR table (32b partial lines) + scores + phase state: well under
    /// 2KB, as published.
    fn storage_bits(&self) -> u64 {
        self.cfg.rr_entries as u64 * 32 + OFFSETS.len() as u64 * 5 + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_types::{Addr, MemAccess, Pc};

    fn access(addr: u64) -> AccessInfo {
        AccessInfo {
            access: MemAccess::load(Pc(0x400), Addr(addr)),
            hit: false,
            cycle: 0,
            pq_free: 8,
        }
    }

    #[test]
    fn learns_a_timely_offset_on_a_stream() {
        // With an RR delay of 16 accesses, a unit-stride stream makes
        // every offset >= 16 timely; BOP must converge to one of them
        // (its whole point is to skip offsets that would arrive late).
        let mut bop = Bop::default();
        let mut out = Vec::new();
        for i in 0..20_000u64 {
            out.clear();
            bop.on_access(&access((i % (1 << 18)) * 64), &mut out);
        }
        let best = bop.best_offset.expect("BOP must converge on a stream");
        assert!(best >= 16, "only timely offsets should win: {best}");
        // And it prefetches with it.
        out.clear();
        bop.on_access(&access(0x100_0000), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line.0, (0x100_0000u64 >> 6) + best as u64);
    }

    #[test]
    fn too_fast_strides_disable_prefetching() {
        // Stride 4 with a 16-access fill delay: the nearest timely
        // offset would be 64, beyond the candidate list — BOP must
        // notice nothing scores and turn itself off.
        let mut bop = Bop::new(BopConfig { max_rounds: 8, ..BopConfig::default() });
        let mut out = Vec::new();
        for i in 0..20_000u64 {
            out.clear();
            bop.on_access(&access((i * 4 % (1 << 18)) * 64), &mut out);
        }
        assert_eq!(bop.best_offset, None);
    }

    #[test]
    fn random_traffic_turns_it_off() {
        let mut bop = Bop::new(BopConfig { max_rounds: 4, ..BopConfig::default() });
        let mut out = Vec::new();
        // Pseudo-random lines: no offset scores.
        let mut x = 0x12345678u64;
        for _ in 0..8_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            out.clear();
            bop.on_access(&access((x % (1 << 30)) & !63), &mut out);
        }
        assert_eq!(bop.best_offset, None, "bad scores must disable prefetching");
    }

    #[test]
    fn stays_in_page() {
        let mut bop = Bop::default();
        let mut out = Vec::new();
        bop.on_access(&access(0x1fc0), &mut out); // last line of page 1
        assert!(out.iter().all(|r| r.line.0 / 64 == 0), "{out:?}");
    }

    #[test]
    fn storage_is_tiny() {
        assert!(Bop::default().storage_bits() / 8 < 2048);
    }
}
