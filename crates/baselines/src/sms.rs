//! Spatial Memory Streaming (Somogyi et al., ISCA 2006).
//!
//! The original bit-vector spatial prefetcher: a pattern history table
//! indexed by PC+TriggerOffset stores the last observed pattern per
//! feature value; on a trigger access the stored pattern is replayed
//! into the L1D.

use pmp_core::capture::{CaptureConfig, CapturedPattern, PatternCapture};
use pmp_prefetch::{AccessInfo, EvictInfo, Introspect, PrefetchRequest, Prefetcher, ReplayQueue};
use pmp_types::{BitPattern, CacheLevel, Pc};

/// SMS configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SmsConfig {
    /// Capture framework.
    pub capture: CaptureConfig,
    /// Pattern-history-table sets.
    pub pht_sets: usize,
    /// Pattern-history-table ways.
    pub pht_ways: usize,
}

impl Default for SmsConfig {
    /// A 2K-entry PHT (16KB-class prefetcher, as in the original
    /// paper's ~dozens-of-KB design space).
    fn default() -> Self {
        SmsConfig { capture: CaptureConfig::default(), pht_sets: 256, pht_ways: 8 }
    }
}

#[derive(Debug, Clone, Copy)]
struct PhtEntry {
    tag: u64,
    pattern: BitPattern,
    lru: u64,
    valid: bool,
}

/// The SMS prefetcher.
#[derive(Debug, Clone)]
pub struct Sms {
    cfg: SmsConfig,
    capture: PatternCapture,
    pht: Vec<Vec<PhtEntry>>,
    replay: ReplayQueue,
    clock: u64,
}

impl Sms {
    /// Build SMS from its configuration.
    pub fn new(cfg: SmsConfig) -> Self {
        let len = cfg.capture.geometry.lines_per_region();
        Sms {
            capture: PatternCapture::new(cfg.capture.clone()),
            pht: vec![
                vec![
                    PhtEntry { tag: 0, pattern: BitPattern::new(len), lru: 0, valid: false };
                    cfg.pht_ways
                ];
                cfg.pht_sets
            ],
            replay: ReplayQueue::new(128),
            clock: 0,
            cfg,
        }
    }

    /// PC+TriggerOffset feature (the original SMS index).
    fn feature(&self, pc: Pc, offset: u8) -> u64 {
        (pc.0 << 6) ^ u64::from(offset)
    }

    fn set_of(&self, feature: u64) -> usize {
        (feature as usize) % self.cfg.pht_sets
    }

    fn train(&mut self, captured: &CapturedPattern) {
        self.clock += 1;
        let clock = self.clock;
        let feature = self.feature(captured.trigger_pc, captured.trigger_offset);
        let set = self.set_of(feature);
        let anchored = captured.anchored();
        if let Some(e) = self.pht[set].iter_mut().find(|e| e.valid && e.tag == feature) {
            e.pattern = anchored;
            e.lru = clock;
            return;
        }
        let slot = self.pht[set]
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru } else { 0 })
            .expect("non-empty set");
        *slot = PhtEntry { tag: feature, pattern: anchored, lru: clock, valid: true };
    }
}

impl Default for Sms {
    fn default() -> Self {
        Sms::new(SmsConfig::default())
    }
}

impl Introspect for Sms {}

impl Prefetcher for Sms {
    fn name(&self) -> &'static str {
        "sms"
    }

    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<PrefetchRequest>) {
        let geom = self.capture.geometry();
        let line = info.access.addr.line();
        let outcome = self.capture.on_load(info.access.pc, line);
        if let Some(f) = outcome.flushed {
            self.train(&f);
        }
        if let Some(trig) = outcome.trigger {
            self.clock += 1;
            let clock = self.clock;
            let feature = self.feature(trig.pc, trig.offset);
            let set = self.set_of(feature);
            if let Some(e) =
                self.pht[set].iter_mut().find(|e| e.valid && e.tag == feature)
            {
                e.lru = clock;
                let len = geom.lines_per_region() as u16;
                let pattern = e.pattern;
                let reqs: Vec<PrefetchRequest> = pattern
                    .iter_set()
                    .filter(|&o| o != 0)
                    .map(|anch| {
                        let abs = ((u16::from(trig.offset) + u16::from(anch)) % len) as u8;
                        PrefetchRequest::new(geom.line_of(trig.region, abs), CacheLevel::L1D)
                    })
                    .collect();
                self.replay.push_all(reqs);
            }
        }
        self.replay.issue(info.pq_free, out);
    }

    fn on_evict(&mut self, info: &EvictInfo) {
        if let Some(captured) = self.capture.on_evict(info.line) {
            self.train(&captured);
        }
    }

    fn storage_bits(&self) -> u64 {
        let len = u64::from(self.capture.geometry().lines_per_region());
        // tag (16b partial) + pattern + lru(3) per PHT entry.
        let per = 16 + len + 3;
        self.cfg.capture.storage_bits()
            + (self.cfg.pht_sets * self.cfg.pht_ways) as u64 * per
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_types::{Addr, MemAccess};

    fn access(pc: u64, addr: u64) -> AccessInfo {
        AccessInfo {
            access: MemAccess::load(Pc(pc), Addr(addr)),
            hit: false,
            cycle: 0,
            pq_free: 8,
        }
    }

    #[test]
    fn replays_learned_pattern() {
        let mut sms = Sms::default();
        let mut out = Vec::new();
        // Train one region: trigger offset 2 at PC 0x400, then 3, 5.
        for r in 0..3u64 {
            let base = (10 + r) * 4096;
            sms.on_access(&access(0x400, base + 2 * 64), &mut out);
            sms.on_access(&access(0x404, base + 3 * 64), &mut out);
            sms.on_access(&access(0x404, base + 5 * 64), &mut out);
            sms.on_evict(&EvictInfo { line: Addr(base + 2 * 64).line(), cycle: 0 });
            out.clear();
        }
        // Fresh region, same PC and trigger offset.
        sms.on_access(&access(0x400, 99 * 4096 + 2 * 64), &mut out);
        let offs: Vec<u64> = out.iter().map(|r| r.line.0 - 99 * 64).collect();
        assert!(offs.contains(&3) && offs.contains(&5), "{offs:?}");
        assert!(out.iter().all(|r| r.fill_level == CacheLevel::L1D));
    }

    #[test]
    fn different_pc_does_not_match() {
        let mut sms = Sms::default();
        let mut out = Vec::new();
        for r in 0..3u64 {
            let base = (10 + r) * 4096;
            sms.on_access(&access(0x400, base + 2 * 64), &mut out);
            sms.on_access(&access(0x404, base + 3 * 64), &mut out);
            sms.on_evict(&EvictInfo { line: Addr(base + 2 * 64).line(), cycle: 0 });
            out.clear();
        }
        sms.on_access(&access(0x888, 99 * 4096 + 2 * 64), &mut out);
        assert!(out.is_empty(), "different trigger PC must not replay: {out:?}");
    }

    #[test]
    fn storage_is_tens_of_kb() {
        let kib = Sms::default().storage_bits() / 8 / 1024;
        assert!((10..64).contains(&kib), "SMS ~ {kib} KiB");
    }
}
