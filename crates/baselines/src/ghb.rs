//! Global History Buffer prefetcher, G/DC flavour (Nesbit & Smith,
//! IEEE Micro 2005) — the paper's Section VI-C representative of
//! history-buffer designs: a circular buffer of recent miss addresses
//! threaded into per-PC chains, with delta-correlation prediction.
//!
//! On each access the PC's chain yields its recent delta stream; the
//! predictor looks for an earlier occurrence of the two most recent
//! deltas and replays the deltas that followed that occurrence.

use pmp_prefetch::{AccessInfo, EvictInfo, Introspect, PrefetchRequest, Prefetcher};
use pmp_types::{CacheLevel, LineAddr, Pc};

/// GHB configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GhbConfig {
    /// Circular global history buffer entries.
    pub ghb_entries: usize,
    /// Index-table entries (PC-hashed, direct-mapped).
    pub it_entries: usize,
    /// Maximum chain length walked per prediction.
    pub max_chain: usize,
    /// Prefetch degree (deltas replayed per match).
    pub degree: usize,
}

impl Default for GhbConfig {
    /// The published 256-entry GHB / 256-entry IT configuration.
    fn default() -> Self {
        GhbConfig { ghb_entries: 256, it_entries: 256, max_chain: 16, degree: 4 }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct GhbEntry {
    line: u64,
    /// Absolute index of the previous same-PC entry (usize::MAX = none).
    prev: usize,
    valid: bool,
}

/// The GHB G/DC prefetcher.
#[derive(Debug, Clone)]
pub struct Ghb {
    cfg: GhbConfig,
    buffer: Vec<GhbEntry>,
    /// Monotone write position; entry i lives at `i % ghb_entries` and
    /// is stale once `head - i >= ghb_entries`.
    head: usize,
    /// Per-PC chain heads (absolute indices).
    index: Vec<usize>,
}

impl Ghb {
    /// Build GHB from its configuration.
    pub fn new(cfg: GhbConfig) -> Self {
        assert!(cfg.ghb_entries.is_power_of_two(), "GHB entries must be a power of two");
        assert!(cfg.it_entries.is_power_of_two(), "IT entries must be a power of two");
        Ghb {
            buffer: vec![GhbEntry::default(); cfg.ghb_entries],
            head: 0,
            index: vec![usize::MAX; cfg.it_entries],
            cfg,
        }
    }

    fn it_slot(&self, pc: Pc) -> usize {
        (pc.hash_bits(self.cfg.it_entries.trailing_zeros()) as usize)
            & (self.cfg.it_entries - 1)
    }

    fn live(&self, abs: usize) -> Option<GhbEntry> {
        if abs == usize::MAX || self.head.saturating_sub(abs) > self.cfg.ghb_entries {
            return None;
        }
        let e = self.buffer[abs % self.cfg.ghb_entries];
        e.valid.then_some(e)
    }

    /// Collect the PC chain's recent lines, newest first.
    fn chain(&self, pc: Pc) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.cfg.max_chain);
        let mut cursor = self.index[self.it_slot(pc)];
        let mut last_abs = usize::MAX;
        while out.len() < self.cfg.max_chain {
            let Some(e) = self.live(cursor) else { break };
            // Guard against cycles from slot reuse.
            if cursor >= last_abs && last_abs != usize::MAX {
                break;
            }
            out.push(e.line);
            last_abs = cursor;
            cursor = e.prev;
        }
        out
    }
}

impl Default for Ghb {
    fn default() -> Self {
        Ghb::new(GhbConfig::default())
    }
}

impl Introspect for Ghb {}

impl Prefetcher for Ghb {
    fn name(&self) -> &'static str {
        "ghb"
    }

    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<PrefetchRequest>) {
        let pc = info.access.pc;
        let line = info.access.addr.line();

        // Record the access at the head of its PC chain.
        let slot = self.it_slot(pc);
        let prev = self.index[slot];
        let abs = self.head;
        self.buffer[abs % self.cfg.ghb_entries] =
            GhbEntry { line: line.0, prev, valid: true };
        self.index[slot] = abs;
        self.head += 1;

        // Delta correlation over the chain (newest first).
        let lines = self.chain(pc);
        if lines.len() < 4 {
            return;
        }
        let deltas: Vec<i64> =
            lines.windows(2).map(|w| w[0] as i64 - w[1] as i64).collect();
        // Most recent delta pair (d1 newest).
        let (d1, d2) = (deltas[0], deltas[1]);
        if d1 == 0 || d1.abs() > 64 {
            return;
        }
        // Find the same pair earlier in the stream and replay what
        // followed it (deltas run newest -> oldest, so "followed" means
        // the deltas at smaller indices).
        let mut found = None;
        for i in 2..deltas.len().saturating_sub(1) {
            if deltas[i] == d1 && deltas[i + 1] == d2 {
                found = Some(i);
                break;
            }
        }
        let Some(at) = found else { return };
        let mut target = line.0 as i64;
        // Replay up to `degree` of the deltas that followed the match.
        for &d in deltas[..at].iter().rev().take(self.cfg.degree) {
            if d == 0 || d.abs() > 64 {
                break;
            }
            target += d;
            if target < 0 {
                break;
            }
            out.push(PrefetchRequest::new(LineAddr(target as u64), CacheLevel::L1D));
        }
    }

    fn on_evict(&mut self, _info: &EvictInfo) {}

    /// IT (head pointers) + GHB entries (line 32b + prev 8b) ≈ 1.5KB.
    fn storage_bits(&self) -> u64 {
        self.cfg.it_entries as u64 * 8 + self.cfg.ghb_entries as u64 * (32 + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_types::{Addr, MemAccess};

    fn access(pc: u64, addr: u64) -> AccessInfo {
        AccessInfo {
            access: MemAccess::load(Pc(pc), Addr(addr)),
            hit: false,
            cycle: 0,
            pq_free: 8,
        }
    }

    #[test]
    fn replays_periodic_delta_sequence() {
        // Deltas (1, 2, 3) repeating under one PC.
        let mut g = Ghb::default();
        let mut out = Vec::new();
        let mut line = 1000i64;
        for rep in 0..8 {
            for d in [1i64, 2, 3] {
                let _ = rep;
                line += d;
                out.clear();
                g.on_access(&access(0x400, (line as u64) * 64), &mut out);
            }
        }
        assert!(!out.is_empty(), "GHB must correlate the repeating deltas");
        // The first predicted target continues the cycle.
        let next = out[0].line.0 as i64 - line;
        assert!([1, 2, 3].contains(&next), "predicted delta {next}");
    }

    #[test]
    fn needs_history_before_predicting() {
        let mut g = Ghb::default();
        let mut out = Vec::new();
        g.on_access(&access(0x400, 0x1000), &mut out);
        g.on_access(&access(0x400, 0x1040), &mut out);
        g.on_access(&access(0x400, 0x1080), &mut out);
        assert!(out.is_empty(), "three accesses give one delta pair, no match yet");
    }

    #[test]
    fn chains_are_per_pc() {
        let mut g = Ghb::default();
        let mut out = Vec::new();
        // Interleave two PCs; each sees a clean (2, 2, 2, ...) stream.
        for i in 0..12u64 {
            out.clear();
            g.on_access(&access(0x400, 0x10000 + i * 128), &mut out);
            let before = out.len();
            g.on_access(&access(0x888, 0x90000 + i * 320), &mut out);
            let _ = before;
        }
        // Both chains produce constant-delta predictions in the final
        // iteration's accumulated output: the 0x400 stream strides 2
        // lines, the 0x888 stream 5 lines.
        let targets: Vec<u64> = out.iter().map(|r| r.line.0).collect();
        let a_next = ((0x10000u64 + 11 * 128) >> 6) + 2;
        let b_next = ((0x90000u64 + 11 * 320) >> 6) + 5;
        assert!(targets.contains(&a_next), "{targets:?} missing {a_next}");
        assert!(targets.contains(&b_next), "{targets:?} missing {b_next}");
    }

    #[test]
    fn stale_entries_break_chains() {
        let mut g = Ghb::new(GhbConfig { ghb_entries: 16, ..GhbConfig::default() });
        let mut out = Vec::new();
        // Train PC A, then flood the buffer with PC B entries.
        for i in 0..6u64 {
            g.on_access(&access(0x400, 0x10000 + i * 64), &mut out);
        }
        for i in 0..32u64 {
            g.on_access(&access(0x500, 0x50000 + i * 4096), &mut out);
        }
        out.clear();
        // PC A's chain is gone; no prediction from one fresh access.
        g.on_access(&access(0x400, 0x10000 + 6 * 64), &mut out);
        assert!(out.is_empty(), "flooded chain must not dangle: {out:?}");
    }

    #[test]
    fn storage_is_small() {
        assert!(Ghb::default().storage_bits() / 8 < 2048);
    }
}
