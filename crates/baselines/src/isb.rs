//! Irregular Stream Buffer (Jain & Lin, MICRO 2013) — the paper's
//! Section VI-C representative of temporal prefetchers: physical
//! addresses are remapped into a *structural* address space in which
//! temporally correlated accesses become sequential, so irregular
//! streams can be prefetched like linear ones.
//!
//! Simplification vs. the original (documented in DESIGN.md): the real
//! ISB backs its PS/SP maps with off-chip metadata synchronised to TLB
//! activity; we model bounded on-chip maps with FIFO replacement, which
//! preserves the mechanism (and its capacity sensitivity) without an
//! off-chip model.

use pmp_prefetch::{AccessInfo, EvictInfo, Introspect, PrefetchRequest, Prefetcher};
use pmp_types::{CacheLevel, LineAddr, Pc};
use std::collections::{HashMap, VecDeque};

/// ISB configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsbConfig {
    /// Maximum mappings held in each direction (on-chip metadata cache).
    pub map_entries: usize,
    /// Structural addresses allocated per new stream chunk.
    pub chunk: u64,
    /// Prefetch degree (structural successors fetched).
    pub degree: u64,
    /// Tracked training streams (one per active PC).
    pub streams: usize,
}

impl Default for IsbConfig {
    /// An 8K-mapping on-chip cache (the class of ISB's 8KB budget).
    fn default() -> Self {
        IsbConfig { map_entries: 8192, chunk: 16, degree: 3, streams: 16 }
    }
}

/// A bounded map with FIFO eviction (models a metadata cache).
#[derive(Debug, Clone)]
struct BoundedMap {
    map: HashMap<u64, u64>,
    order: VecDeque<u64>,
    cap: usize,
}

impl BoundedMap {
    fn new(cap: usize) -> Self {
        BoundedMap { map: HashMap::new(), order: VecDeque::new(), cap }
    }

    fn insert(&mut self, k: u64, v: u64) {
        if self.map.insert(k, v).is_none() {
            self.order.push_back(k);
            if self.order.len() > self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }

    fn get(&self, k: u64) -> Option<u64> {
        self.map.get(&k).copied()
    }
}

/// The ISB prefetcher.
#[derive(Debug, Clone)]
pub struct Isb {
    cfg: IsbConfig,
    /// Physical line -> structural address.
    ps: BoundedMap,
    /// Structural address -> physical line.
    sp: BoundedMap,
    /// Next unallocated structural address.
    next_structural: u64,
    /// Per-PC training state: (pc, last structural address).
    streams: Vec<(Pc, u64)>,
}

impl Isb {
    /// Build ISB from its configuration.
    pub fn new(cfg: IsbConfig) -> Self {
        assert!(cfg.chunk >= 2 && cfg.degree >= 1, "degenerate ISB config");
        Isb {
            ps: BoundedMap::new(cfg.map_entries),
            sp: BoundedMap::new(cfg.map_entries),
            next_structural: 0,
            streams: Vec::with_capacity(cfg.streams),
            cfg,
        }
    }

    fn stream_slot(&mut self, pc: Pc) -> usize {
        if let Some(i) = self.streams.iter().position(|(p, _)| *p == pc) {
            return i;
        }
        if self.streams.len() < self.cfg.streams {
            self.streams.push((pc, u64::MAX));
            return self.streams.len() - 1;
        }
        // Round-robin-ish replacement: reuse slot 0 by rotation.
        self.streams.rotate_left(1);
        let last = self.streams.len() - 1;
        self.streams[last] = (pc, u64::MAX);
        last
    }

    fn assign(&mut self, line: u64, structural: u64) {
        self.ps.insert(line, structural);
        self.sp.insert(structural, line);
    }
}

impl Default for Isb {
    fn default() -> Self {
        Isb::new(IsbConfig::default())
    }
}

impl Introspect for Isb {}

impl Prefetcher for Isb {
    fn name(&self) -> &'static str {
        "isb"
    }

    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<PrefetchRequest>) {
        let pc = info.access.pc;
        let line = info.access.addr.line().0;
        let slot = self.stream_slot(pc);
        let last_structural = self.streams[slot].1;

        // Training: give this line a structural address adjacent to its
        // temporal predecessor in the same PC stream.
        let structural = match self.ps.get(line) {
            Some(s) => s,
            None => {
                let s = if last_structural != u64::MAX
                    && !(last_structural + 1).is_multiple_of(self.cfg.chunk)
                {
                    last_structural + 1
                } else {
                    // Open a fresh chunk.
                    let base = self.next_structural;
                    self.next_structural += self.cfg.chunk;
                    base
                };
                self.assign(line, s);
                s
            }
        };
        self.streams[slot].1 = structural;

        // Prediction: prefetch the physical lines mapped to the next
        // structural addresses (temporal successors from last time).
        for d in 1..=self.cfg.degree {
            let Some(phys) = self.sp.get(structural + d) else { break };
            if phys != line {
                out.push(PrefetchRequest::new(LineAddr(phys), CacheLevel::L1D));
            }
        }
    }

    fn on_evict(&mut self, _info: &EvictInfo) {}

    /// On-chip metadata cache: two maps × entries × (tag 32b + mapping
    /// 32b) — the multi-KB class that makes temporal prefetching
    /// expensive, as the paper's §VI-C discussion notes.
    fn storage_bits(&self) -> u64 {
        2 * self.cfg.map_entries as u64 * 64 + self.cfg.streams as u64 * 80
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_types::{Addr, MemAccess};

    fn access(pc: u64, addr: u64) -> AccessInfo {
        AccessInfo {
            access: MemAccess::load(Pc(pc), Addr(addr)),
            hit: false,
            cycle: 0,
            pq_free: 8,
        }
    }

    /// An irregular but repeating pointer chain.
    fn chain() -> Vec<u64> {
        vec![0x10000, 0x93000, 0x22040, 0x77080, 0x41000, 0x5a0c0]
    }

    #[test]
    fn learns_temporal_streams() {
        let mut isb = Isb::default();
        let mut out = Vec::new();
        // First traversal: training only.
        for &a in &chain() {
            out.clear();
            isb.on_access(&access(0x400, a), &mut out);
        }
        // Second traversal: each access predicts the next links.
        let c = chain();
        let mut predicted = 0;
        for (i, &a) in c.iter().enumerate() {
            out.clear();
            isb.on_access(&access(0x400, a), &mut out);
            if i + 1 < c.len() {
                let next_line = c[i + 1] >> 6;
                if out.iter().any(|r| r.line.0 == next_line) {
                    predicted += 1;
                }
            }
        }
        assert!(
            predicted >= c.len() - 2,
            "ISB must replay the temporal chain: {predicted}/{}",
            c.len() - 1
        );
    }

    #[test]
    fn chunks_bound_stream_runs() {
        // Structural allocation never crosses a chunk boundary, so two
        // unrelated streams do not become structural neighbours.
        let mut isb = Isb::new(IsbConfig { chunk: 4, ..IsbConfig::default() });
        let mut out = Vec::new();
        // Stream A trains 3 lines, then stream B (different PC) trains.
        for a in [0x1000u64, 0x2000, 0x3000] {
            isb.on_access(&access(0x400, a), &mut out);
        }
        for b in [0x91000u64, 0x92000] {
            isb.on_access(&access(0x800, b), &mut out);
        }
        out.clear();
        // Re-access A's last line: predictions must not leak B's lines.
        isb.on_access(&access(0x400, 0x3000), &mut out);
        assert!(
            out.iter().all(|r| r.line.0 != 0x91000 >> 6),
            "chunking must separate streams: {out:?}"
        );
    }

    #[test]
    fn no_prediction_without_history() {
        let mut isb = Isb::default();
        let mut out = Vec::new();
        isb.on_access(&access(0x400, 0x5000), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn bounded_maps_evict() {
        let mut isb = Isb::new(IsbConfig { map_entries: 8, ..IsbConfig::default() });
        let mut out = Vec::new();
        for i in 0..64u64 {
            isb.on_access(&access(0x400, 0x10000 + i * 4096), &mut out);
        }
        // The first mapping is long gone; retraining starts fresh and
        // must not panic or mispredict stale physical lines.
        out.clear();
        isb.on_access(&access(0x400, 0x10000), &mut out);
        assert!(out.len() <= 3);
    }

    #[test]
    fn storage_reflects_metadata_cost() {
        let kib = Isb::default().storage_bits() / 8 / 1024;
        assert!((32..256).contains(&kib), "ISB metadata is tens of KB: {kib}");
    }
}
