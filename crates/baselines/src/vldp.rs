//! Variable Length Delta Prefetcher (Shevgoor et al., MICRO 2015) —
//! the delta-sequence prefetcher the paper's Related Work contrasts
//! with bit-vector designs: separate Delta Prediction Tables (DPTs)
//! keyed by delta histories of length 1, 2 and 3, with longer matches
//! overriding shorter ones.

use pmp_prefetch::{AccessInfo, EvictInfo, Introspect, PrefetchRequest, Prefetcher};
use pmp_types::{CacheLevel, LineAddr, PAGE_BYTES};

const LINES_PER_PAGE: u64 = PAGE_BYTES / 64;
/// History lengths of the three DPTs.
const MAX_HISTORY: usize = 3;

/// VLDP configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VldpConfig {
    /// Entries per Delta Prediction Table.
    pub dpt_entries: usize,
    /// Per-page Delta History Buffer entries.
    pub dhb_entries: usize,
    /// Lookahead degree (predictions chained per access).
    pub degree: u32,
}

impl Default for VldpConfig {
    /// The published ~1KB-class configuration.
    fn default() -> Self {
        VldpConfig { dpt_entries: 64, dhb_entries: 16, degree: 4 }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct DptEntry {
    key: u64,
    delta: i8,
    confidence: u8,
    valid: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct DhbEntry {
    page: u64,
    last_offset: u8,
    history: [i8; MAX_HISTORY],
    history_len: usize,
    valid: bool,
}

/// The VLDP prefetcher.
#[derive(Debug, Clone)]
pub struct Vldp {
    cfg: VldpConfig,
    /// `dpt[h]` predicts from a history of length `h + 1`.
    dpt: [Vec<DptEntry>; MAX_HISTORY],
    dhb: Vec<DhbEntry>,
}

impl Vldp {
    /// Build VLDP from its configuration.
    pub fn new(cfg: VldpConfig) -> Self {
        assert!(cfg.dpt_entries.is_power_of_two(), "DPT entries must be a power of two");
        Vldp {
            dpt: std::array::from_fn(|_| vec![DptEntry::default(); cfg.dpt_entries]),
            dhb: vec![DhbEntry::default(); cfg.dhb_entries],
            cfg,
        }
    }

    fn key_of(history: &[i8]) -> u64 {
        history
            .iter()
            .fold(0u64, |k, &d| (k << 8) ^ u64::from(d as u8) ^ (k >> 5))
    }

    fn dpt_slot(&self, table: usize, key: u64) -> usize {
        (key as usize ^ (key >> 13) as usize ^ table) & (self.cfg.dpt_entries - 1)
    }

    fn train(&mut self, history: &[i8], next_delta: i8) {
        for h in 0..history.len().min(MAX_HISTORY) {
            let hist = &history[history.len() - (h + 1)..];
            let key = Self::key_of(hist);
            let slot = self.dpt_slot(h, key);
            let e = &mut self.dpt[h][slot];
            if e.valid && e.key == key {
                if e.delta == next_delta {
                    e.confidence = (e.confidence + 1).min(3);
                } else if e.confidence > 0 {
                    e.confidence -= 1;
                } else {
                    e.delta = next_delta;
                    e.confidence = 1;
                }
            } else {
                *e = DptEntry { key, delta: next_delta, confidence: 1, valid: true };
            }
        }
    }

    /// Longest-history confident prediction for `history`.
    fn predict(&self, history: &[i8]) -> Option<i8> {
        for h in (0..history.len().min(MAX_HISTORY)).rev() {
            let hist = &history[history.len() - (h + 1)..];
            let key = Self::key_of(hist);
            let e = &self.dpt[h][self.dpt_slot(h, key)];
            if e.valid && e.key == key && e.confidence >= 2 {
                return Some(e.delta);
            }
        }
        None
    }
}

impl Default for Vldp {
    fn default() -> Self {
        Vldp::new(VldpConfig::default())
    }
}

impl Introspect for Vldp {}

impl Prefetcher for Vldp {
    fn name(&self) -> &'static str {
        "vldp"
    }

    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<PrefetchRequest>) {
        let line = info.access.addr.line();
        let page = line.0 / LINES_PER_PAGE;
        let offset = (line.0 % LINES_PER_PAGE) as u8;

        // --- Update the page's delta history.
        let slot = (page as usize) % self.dhb.len();
        let entry = self.dhb[slot];
        let mut history: Vec<i8> = Vec::with_capacity(MAX_HISTORY);
        if entry.valid && entry.page == page {
            let delta = offset as i16 - entry.last_offset as i16;
            if delta == 0 {
                return; // same line: nothing to learn or predict
            }
            let delta = delta as i8;
            history.extend_from_slice(&entry.history[..entry.history_len]);
            // Train every DPT on (history -> delta), then append it.
            if !history.is_empty() {
                self.train(&history, delta);
            }
            history.push(delta);
            if history.len() > MAX_HISTORY {
                history.remove(0);
            }
        }
        let mut new_entry = DhbEntry {
            page,
            last_offset: offset,
            history: [0; MAX_HISTORY],
            history_len: history.len(),
            valid: true,
        };
        new_entry.history[..history.len()].copy_from_slice(&history);
        self.dhb[slot] = new_entry;

        // --- Chained prediction (lookahead): walk forward `degree`
        // steps with speculative history updates.
        let mut pos = i64::from(offset);
        let mut hist = history;
        for _ in 0..self.cfg.degree {
            let Some(d) = self.predict(&hist) else { break };
            pos += i64::from(d);
            if !(0..LINES_PER_PAGE as i64).contains(&pos) {
                break;
            }
            out.push(PrefetchRequest::new(
                LineAddr(page * LINES_PER_PAGE + pos as u64),
                CacheLevel::L1D,
            ));
            hist.push(d);
            if hist.len() > MAX_HISTORY {
                hist.remove(0);
            }
        }
    }

    fn on_evict(&mut self, _info: &EvictInfo) {}

    /// DHB (page 16b + offset 6b + history 3×7b + len 2b) + 3 DPTs
    /// (key 16b + delta 7b + conf 2b) ≈ 1KB class.
    fn storage_bits(&self) -> u64 {
        self.dhb.len() as u64 * (16 + 6 + 21 + 2)
            + 3 * self.cfg.dpt_entries as u64 * (16 + 7 + 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_types::{Addr, MemAccess, Pc};

    fn access(addr: u64) -> AccessInfo {
        AccessInfo {
            access: MemAccess::load(Pc(0x400), Addr(addr)),
            hit: false,
            cycle: 0,
            pq_free: 8,
        }
    }

    #[test]
    fn learns_constant_stride() {
        let mut v = Vldp::default();
        let mut out = Vec::new();
        for p in 0..20u64 {
            for i in 0..20u64 {
                out.clear();
                v.on_access(&access(p * 4096 + (i * 2 % 64) * 64), &mut out);
            }
        }
        assert!(!out.is_empty(), "VLDP must chain stride-2 predictions");
        // Lookahead chains the +2 delta.
        let base = out[0].line.0 - 2;
        for (k, r) in out.iter().enumerate() {
            assert_eq!(r.line.0, base + 2 * (k as u64 + 1), "{out:?}");
        }
    }

    #[test]
    fn learns_variable_length_patterns() {
        // Pattern (1, 2, -1, -2) repeating: only longer histories
        // disambiguate what follows "+1" (it depends on context).
        let deltas = [1i64, 2, -1, -2];
        let mut v = Vldp::default();
        let mut out = Vec::new();
        let mut offs = 20i64;
        for rep in 0..200 {
            let d = deltas[rep % 4];
            offs += d;
            out.clear();
            v.on_access(&access((offs as u64 % 64) * 64 + 7 * 4096), &mut out);
        }
        // After training, predictions exist (the chained walk follows
        // the learned cycle).
        assert!(!out.is_empty(), "VLDP should predict the periodic delta cycle");
    }

    #[test]
    fn no_prediction_without_confidence() {
        let mut v = Vldp::default();
        let mut out = Vec::new();
        v.on_access(&access(0x1000), &mut out);
        v.on_access(&access(0x1040), &mut out);
        assert!(out.is_empty(), "one observation is not confidence");
    }

    #[test]
    fn stays_in_page() {
        let mut v = Vldp::default();
        let mut out = Vec::new();
        for p in 0..20u64 {
            for i in 0..64u64 {
                out.clear();
                v.on_access(&access(p * 4096 + i * 64), &mut out);
            }
        }
        out.clear();
        v.on_access(&access(99 * 4096 + 63 * 64), &mut out);
        assert!(out.iter().all(|r| r.line.0 / 64 == 99), "{out:?}");
    }

    #[test]
    fn storage_is_about_a_kilobyte() {
        let bytes = Vldp::default().storage_bits() / 8;
        assert!((256..4096).contains(&bytes), "VLDP ≈ 1KB class: {bytes}");
    }
}
