//! # pmp-baselines
//!
//! Clean-room Rust implementations of the four state-of-the-art
//! prefetchers the paper compares PMP against (Section V-A1), plus the
//! classic SMS prefetcher the capture framework descends from:
//!
//! | Prefetcher | Paper | Pattern form | Budget (paper Table V) |
//! |---|---|---|---|
//! | [`Sms`] | Somogyi+ ISCA'06 | bit vectors, PC+offset indexed | — |
//! | [`Bop`] | Michaud HPCA'16 | best constant offset | <2KB |
//! | [`Sandbox`] | Pugsley+ HPCA'14 | sandboxed constant offsets | <1KB |
//! | [`Vldp`] | Shevgoor+ MICRO'15 | variable-length delta sequences | ~1KB |
//! | [`Ghb`] | Nesbit & Smith '05 | global history buffer, delta correlation | ~1.5KB |
//! | [`Isb`] | Jain & Lin MICRO'13 | temporal (structural-address) streaming | tens of KB |
//! | [`DsPatch`] | Bera+ MICRO'19 | dual bit vectors (OR/AND) | 3.6KB |
//! | [`Bingo`] | Bakhshalipour+ HPCA'19 / DPC-3 | bit vectors, PC+Address → PC+Offset | 127.8KB (enhanced) |
//! | [`SppPpf`] | Kim+ MICRO'16 + Bhatia+ ISCA'19 | delta signatures + perceptron filter | 48.4KB |
//! | [`Pythia`] | Bera+ MICRO'21 | tabular RL over program features | 25.5KB |
//!
//! Each implementation follows its paper's published structure at the
//! published sizes; micro-details that the original papers leave to
//! implementations (hash functions, replacement tie-breaks) are chosen
//! for simplicity and documented inline.
//!
//! ## Example
//!
//! ```
//! use pmp_baselines::{Bingo, DsPatch, Pythia, Sms, SppPpf};
//! use pmp_prefetch::Prefetcher;
//!
//! // Storage budgets land in Table V's neighbourhood.
//! let bingo = Bingo::default();
//! let kib = bingo.storage_bits() as f64 / 8.0 / 1024.0;
//! assert!(kib > 100.0, "enhanced Bingo is a heavy prefetcher: {kib}");
//! let dspatch = DsPatch::default();
//! assert!(dspatch.storage_bits() / 8 / 1024 < 8);
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod bingo;
pub mod bop;
pub mod dspatch;
pub mod ghb;
pub mod isb;
pub mod pythia;
pub mod sandbox;
pub mod sms;
pub mod spp;
pub mod vldp;

pub use bingo::{Bingo, BingoConfig};
pub use bop::{Bop, BopConfig};
pub use dspatch::{DsPatch, DsPatchConfig};
pub use ghb::{Ghb, GhbConfig};
pub use isb::{Isb, IsbConfig};
pub use pythia::{Pythia, PythiaConfig};
pub use sandbox::{Sandbox, SandboxConfig};
pub use sms::{Sms, SmsConfig};
pub use spp::{SppPpf, SppPpfConfig};
pub use vldp::{Vldp, VldpConfig};
