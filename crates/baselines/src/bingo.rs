//! Bingo spatial prefetcher (Bakhshalipour et al., HPCA 2019; the
//! "enhanced" DPC-3 variant the PMP paper compares against).
//!
//! Bingo's insight is *multi-feature* lookup over one history table:
//! patterns are stored once, indexed by the short PC+Offset event but
//! tagged with the long PC+Address event. Prediction first tries the
//! precise long event (high confidence → L1D fills); failing that, it
//! votes across all same-short-event entries in the set and prefetches
//! offsets by vote strength (strong → L1D, weak → L2C).
//!
//! The PC+Address tagging is what gives Bingo its accuracy *and* its
//! redundancy: the same pattern reached from 100 different addresses
//! occupies 100 entries — the Table I "PDR 608.7" phenomenon the PMP
//! paper measures (82.9% of Bingo's entries redundant). Keeping that
//! behaviour is essential for the storage-efficiency comparison.

use pmp_core::capture::{CaptureConfig, CapturedPattern, PatternCapture};
use pmp_prefetch::{AccessInfo, EvictInfo, Introspect, PrefetchRequest, Prefetcher, ReplayQueue};
use pmp_types::{BitPattern, CacheLevel, Pc};

/// Bingo configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BingoConfig {
    /// Capture framework.
    pub capture: CaptureConfig,
    /// Pattern-history-table sets.
    pub pht_sets: usize,
    /// Pattern-history-table ways.
    pub pht_ways: usize,
    /// Vote fraction required for an L1D fill on short-event matches.
    pub l1_vote: f64,
    /// Vote fraction required for an L2C fill.
    pub l2_vote: f64,
}

impl Default for BingoConfig {
    /// The enhanced 16K-entry PHT (the paper doubles the DPC-3 size to
    /// match the original publication; Table V charges it 127.8KB).
    fn default() -> Self {
        BingoConfig {
            capture: CaptureConfig::default(),
            pht_sets: 1024,
            pht_ways: 16,
            l1_vote: 0.5,
            l2_vote: 0.2,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PhtEntry {
    /// Long-event tag: hash of PC+Address (trigger line address).
    long_tag: u64,
    /// Short-event tag: hash of PC+Offset.
    short_tag: u64,
    pattern: BitPattern,
    lru: u64,
    valid: bool,
}

/// The Bingo prefetcher.
#[derive(Debug, Clone)]
pub struct Bingo {
    cfg: BingoConfig,
    capture: PatternCapture,
    pht: Vec<Vec<PhtEntry>>,
    replay: ReplayQueue,
    clock: u64,
}

impl Bingo {
    /// Build Bingo from its configuration.
    pub fn new(cfg: BingoConfig) -> Self {
        let len = cfg.capture.geometry.lines_per_region();
        Bingo {
            capture: PatternCapture::new(cfg.capture.clone()),
            pht: vec![
                vec![
                    PhtEntry {
                        long_tag: 0,
                        short_tag: 0,
                        pattern: BitPattern::new(len),
                        lru: 0,
                        valid: false
                    };
                    cfg.pht_ways
                ];
                cfg.pht_sets
            ],
            replay: ReplayQueue::new(128),
            clock: 0,
            cfg,
        }
    }

    fn short_event(pc: Pc, offset: u8) -> u64 {
        (pc.0 << 6) ^ u64::from(offset)
    }

    fn long_event(pc: Pc, trigger_line: u64) -> u64 {
        pc.0.rotate_left(24) ^ trigger_line
    }

    fn set_of(&self, short: u64) -> usize {
        // Index by the short event so long- and short-event lookups
        // land in the same set (the Bingo trick).
        (short as usize ^ (short >> 17) as usize) % self.cfg.pht_sets
    }

    fn train(&mut self, captured: &CapturedPattern, geom: pmp_types::RegionGeometry) {
        self.clock += 1;
        let clock = self.clock;
        let trigger_line = geom.line_of(captured.region, captured.trigger_offset).0;
        let short = Self::short_event(captured.trigger_pc, captured.trigger_offset);
        let long = Self::long_event(captured.trigger_pc, trigger_line);
        let set = self.set_of(short);
        let anchored = captured.anchored();
        if let Some(e) =
            self.pht[set].iter_mut().find(|e| e.valid && e.long_tag == long)
        {
            e.pattern = anchored;
            e.lru = clock;
            return;
        }
        let slot = self.pht[set]
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru } else { 0 })
            .expect("non-empty set");
        *slot = PhtEntry { long_tag: long, short_tag: short, pattern: anchored, lru: clock, valid: true };
    }
}

impl Default for Bingo {
    fn default() -> Self {
        Bingo::new(BingoConfig::default())
    }
}

impl Introspect for Bingo {
    fn gauges(&self, out: &mut Vec<pmp_prefetch::Gauge>) {
        use pmp_prefetch::Gauge;
        let total = self.cfg.pht_sets * self.cfg.pht_ways;
        let valid: usize = self.pht.iter().map(|s| s.iter().filter(|e| e.valid).count()).sum();
        out.push(Gauge::new("bingo_pht_occupancy", valid as f64 / total as f64));
        let mean_pop = if valid == 0 {
            0.0
        } else {
            let pop: u64 = self
                .pht
                .iter()
                .flat_map(|s| s.iter())
                .filter(|e| e.valid)
                .map(|e| u64::from(e.pattern.count()))
                .sum();
            pop as f64 / valid as f64
        };
        out.push(Gauge::new("bingo_pht_mean_pattern_pop", mean_pop));
        out.push(Gauge::new("bingo_replay_len", self.replay.len() as f64));
        out.push(Gauge::new("bingo_clock", self.clock as f64));
    }
}

impl Prefetcher for Bingo {
    fn name(&self) -> &'static str {
        "bingo"
    }

    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<PrefetchRequest>) {
        let geom = self.capture.geometry();
        let line = info.access.addr.line();
        let outcome = self.capture.on_load(info.access.pc, line);
        if let Some(f) = outcome.flushed {
            self.train(&f, geom);
        }
        let Some(trig) = outcome.trigger else {
            self.replay.issue(info.pq_free, out);
            return;
        };
        self.clock += 1;
        let clock = self.clock;
        let trigger_line = geom.line_of(trig.region, trig.offset).0;
        let short = Self::short_event(trig.pc, trig.offset);
        let long = Self::long_event(trig.pc, trigger_line);
        let set_idx = self.set_of(short);
        let len = geom.lines_per_region() as u16;
        let set = &mut self.pht[set_idx];

        // 1. Long event (PC+Address): replay the exact pattern to L1D.
        if let Some(e) = set.iter_mut().find(|e| e.valid && e.long_tag == long) {
            e.lru = clock;
            let pattern = e.pattern;
            let reqs: Vec<PrefetchRequest> = pattern
                .iter_set()
                .filter(|&o| o != 0)
                .map(|anch| {
                    let abs = ((u16::from(trig.offset) + u16::from(anch)) % len) as u8;
                    PrefetchRequest::new(geom.line_of(trig.region, abs), CacheLevel::L1D)
                })
                .collect();
            self.replay.push_all(reqs);
            self.replay.issue(info.pq_free, out);
            return;
        }

        // 2. Short event (PC+Offset): vote across matching entries.
        let matches: Vec<BitPattern> = set
            .iter()
            .filter(|e| e.valid && e.short_tag == short)
            .map(|e| e.pattern)
            .collect();
        if matches.is_empty() {
            self.replay.issue(info.pq_free, out);
            return;
        }
        let n = matches.len() as f64;
        for anch in 1..geom.lines_per_region() as u8 {
            let votes = matches.iter().filter(|p| p.get(anch)).count() as f64;
            let frac = votes / n;
            let level = if frac >= self.cfg.l1_vote {
                Some(CacheLevel::L1D)
            } else if frac >= self.cfg.l2_vote {
                Some(CacheLevel::L2C)
            } else {
                None
            };
            if let Some(level) = level {
                let abs = ((u16::from(trig.offset) + u16::from(anch)) % len) as u8;
                self.replay.push_all([PrefetchRequest::new(
                    geom.line_of(trig.region, abs),
                    level,
                )]);
            }
        }
        self.replay.issue(info.pq_free, out);
    }

    fn on_evict(&mut self, info: &EvictInfo) {
        let geom = self.capture.geometry();
        if let Some(captured) = self.capture.on_evict(info.line) {
            self.train(&captured, geom);
        }
    }

    /// Capture + PHT. Per entry: pattern (64b) plus the stored long/
    /// short tag bits Bingo actually keeps in hardware (it stores the
    /// short tag implicitly via the index and a ~16b compressed long
    /// tag); we charge 64 + 16 + 4 (LRU), ≈ 168KB at 16K entries — the
    /// same class as Table V's 127.8KB.
    fn storage_bits(&self) -> u64 {
        let len = u64::from(self.capture.geometry().lines_per_region());
        self.cfg.capture.storage_bits()
            + (self.cfg.pht_sets * self.cfg.pht_ways) as u64 * (len + 16 + 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_types::{Addr, MemAccess};

    fn access(pc: u64, addr: u64) -> AccessInfo {
        AccessInfo {
            access: MemAccess::load(Pc(pc), Addr(addr)),
            hit: false,
            cycle: 0,
            pq_free: 8,
        }
    }

    fn train_region(b: &mut Bingo, pc: u64, base: u64, offsets: &[u64]) {
        let mut out = Vec::new();
        for (i, &o) in offsets.iter().enumerate() {
            let _ = i;
            b.on_access(&access(pc, base + o * 64), &mut out);
        }
        b.on_evict(&EvictInfo { line: Addr(base + offsets[0] * 64).line(), cycle: 0 });
    }

    #[test]
    fn long_event_replays_exactly() {
        let mut b = Bingo::default();
        train_region(&mut b, 0x400, 10 * 4096, &[2, 3, 7]);
        // Same region, same PC -> long event hit.
        let mut out = Vec::new();
        b.on_access(&access(0x400, 10 * 4096 + 2 * 64), &mut out);
        let offs: Vec<u64> = out.iter().map(|r| r.line.0 - 10 * 64).collect();
        assert!(offs.contains(&3) && offs.contains(&7), "{offs:?}");
        assert!(out.iter().all(|r| r.fill_level == CacheLevel::L1D));
    }

    #[test]
    fn short_event_votes_across_regions() {
        let mut b = Bingo::default();
        // Same PC + trigger offset across different regions; patterns
        // agree on +1, disagree elsewhere.
        train_region(&mut b, 0x400, 10 * 4096, &[2, 3, 5]);
        train_region(&mut b, 0x400, 11 * 4096, &[2, 3, 9]);
        train_region(&mut b, 0x400, 12 * 4096, &[2, 3, 13]);
        // New region (long event misses), same short event.
        let mut out = Vec::new();
        b.on_access(&access(0x400, 99 * 4096 + 2 * 64), &mut out);
        let l1: Vec<u64> = out
            .iter()
            .filter(|r| r.fill_level == CacheLevel::L1D)
            .map(|r| r.line.0 - 99 * 64)
            .collect();
        assert!(l1.contains(&3), "unanimous offset votes to L1D: {out:?}");
        let l2: Vec<u64> = out
            .iter()
            .filter(|r| r.fill_level == CacheLevel::L2C)
            .map(|r| r.line.0 - 99 * 64)
            .collect();
        // 1-of-3 votes (33%) land in L2C territory.
        assert!(
            l2.contains(&5) || l2.contains(&9) || l2.contains(&13),
            "minority votes to L2C: {out:?}"
        );
    }

    #[test]
    fn same_pattern_different_addresses_duplicates_entries() {
        // The redundancy the PMP paper measures: identical patterns from
        // different regions occupy distinct entries (distinct long tags).
        let mut b = Bingo::default();
        for r in 0..6u64 {
            train_region(&mut b, 0x400, (20 + r) * 4096, &[2, 3]);
        }
        let valid: usize =
            b.pht.iter().flatten().filter(|e| e.valid).count();
        assert_eq!(valid, 6, "each region's identical pattern gets its own entry");
    }

    #[test]
    fn storage_is_bingo_class() {
        let kib = Bingo::default().storage_bits() / 8 / 1024;
        assert!((120..200).contains(&kib), "enhanced Bingo ≈ 128-170KB, got {kib}");
    }
}
