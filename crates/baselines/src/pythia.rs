//! Pythia — reinforcement-learning prefetcher (Bera et al., MICRO 2021).
//!
//! Pythia frames prefetching as an RL problem: the *state* is a vector
//! of program features of the demand access, the *action* is one
//! prefetch offset (or no-prefetch), and the *reward* scores the
//! action's outcome (accurate & timely ≫ accurate-late > no-prefetch >
//! inaccurate). Q-values live in feature-plane tables (the QVStore) and
//! actions await their reward in an evaluation queue.
//!
//! Simplifications vs. the original (documented in DESIGN.md): the
//! Q-update is the contextual-bandit special case of SARSA (no
//! next-state bootstrap), and exploration is ε-greedy with a fixed ε —
//! both preserve the property the PMP paper leans on: **one prefetch
//! per prediction**, which caps Pythia's prefetch depth.

use pmp_prefetch::{AccessInfo, EvictInfo, FeedbackKind, Introspect, PrefetchRequest, Prefetcher};
use pmp_types::{CacheLevel, LineAddr, Rng64, PAGE_BYTES};

const LINES_PER_PAGE: u64 = PAGE_BYTES / 64;

/// The candidate prefetch offsets (line deltas), matching Pythia's
/// published action list shape: mostly-forward deltas plus a few
/// backward ones and the no-prefetch action (index 0).
const ACTIONS: [i64; 16] = [0, 1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 24, 32, -1, -2, -4];

/// Number of feature planes in the QVStore.
const PLANES: usize = 2;

/// Pythia configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PythiaConfig {
    /// Entries per feature-plane Q table.
    pub table_entries: usize,
    /// Learning rate α.
    pub alpha: f64,
    /// Exploration rate ε.
    pub epsilon: f64,
    /// Reward: accurate and timely.
    pub r_timely: f64,
    /// Reward: accurate but late.
    pub r_late: f64,
    /// Reward: inaccurate (useless).
    pub r_inaccurate: f64,
    /// Reward: choosing not to prefetch.
    pub r_nopref: f64,
    /// Evaluation-queue entries.
    pub eq_entries: usize,
    /// RNG seed for ε-greedy exploration (deterministic runs).
    pub seed: u64,
}

impl Default for PythiaConfig {
    /// ≈25.5KB-class configuration with the published reward levels.
    fn default() -> Self {
        PythiaConfig {
            table_entries: 1024,
            alpha: 0.10, // published α is tiny; scaled up for our shorter traces
            epsilon: 0.02,
            r_timely: 20.0,
            r_late: 12.0,
            r_inaccurate: -8.0,
            r_nopref: -2.0,
            eq_entries: 256,
            seed: 0x9e3779b97f4a7c15,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct EqEntry {
    line: u64,
    features: [usize; PLANES],
    action: usize,
    resolved: bool,
    valid: bool,
}

/// The Pythia prefetcher.
#[derive(Debug, Clone)]
pub struct Pythia {
    cfg: PythiaConfig,
    /// `q[plane][feature_index][action]`.
    q: Vec<Vec<[f32; ACTIONS.len()]>>,
    eq: Vec<EqEntry>,
    eq_next: usize,
    last_line: u64,
    rng: Rng64,
}

impl Pythia {
    /// Build Pythia from its configuration.
    pub fn new(cfg: PythiaConfig) -> Self {
        assert!(cfg.table_entries.is_power_of_two());
        Pythia {
            q: (0..PLANES)
                .map(|_| vec![[0.0f32; ACTIONS.len()]; cfg.table_entries])
                .collect(),
            eq: vec![
                EqEntry {
                    line: 0,
                    features: [0; PLANES],
                    action: 0,
                    resolved: false,
                    valid: false
                };
                cfg.eq_entries
            ],
            eq_next: 0,
            last_line: 0,
            rng: Rng64::seed_from_u64(cfg.seed),
            cfg,
        }
    }

    /// Feature planes: (PC ⊕ last line delta) and (page offset, delta).
    fn features(&self, pc: u64, line: u64) -> [usize; PLANES] {
        let m = self.cfg.table_entries;
        let delta = (line as i64 - self.last_line as i64).clamp(-128, 127);
        let offset = line % LINES_PER_PAGE;
        [
            ((pc ^ (pc >> 13) ^ ((delta + 128) as u64).wrapping_mul(0x9e37)) as usize) % m,
            (((offset << 8) ^ (delta + 128) as u64) as usize) % m,
        ]
    }

    fn q_sum(&self, features: &[usize; PLANES], action: usize) -> f64 {
        (0..PLANES).map(|p| f64::from(self.q[p][features[p]][action])).sum()
    }

    fn update(&mut self, features: &[usize; PLANES], action: usize, reward: f64) {
        for (plane, &feat) in self.q.iter_mut().zip(features) {
            let q = &mut plane[feat][action];
            *q += (self.cfg.alpha * (reward - f64::from(*q))) as f32;
        }
    }

    fn push_eq(&mut self, entry: EqEntry) {
        // Retire the slot being overwritten: unresolved non-no-prefetch
        // actions never saw a demand, treat as inaccurate; the
        // no-prefetch action gets its (mildly negative) fixed reward.
        let old = self.eq[self.eq_next];
        if old.valid && !old.resolved {
            let reward = if ACTIONS[old.action] == 0 {
                self.cfg.r_nopref
            } else {
                self.cfg.r_inaccurate
            };
            self.update(&old.features, old.action, reward);
        }
        self.eq[self.eq_next] = entry;
        self.eq_next = (self.eq_next + 1) % self.eq.len();
    }
}

impl Default for Pythia {
    fn default() -> Self {
        Pythia::new(PythiaConfig::default())
    }
}

impl Introspect for Pythia {}

impl Prefetcher for Pythia {
    fn name(&self) -> &'static str {
        "pythia"
    }

    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<PrefetchRequest>) {
        let line = info.access.addr.line().0;
        let features = self.features(info.access.pc.0, line);
        self.last_line = line;

        // ε-greedy action selection over the summed feature-plane Qs.
        let action = if self.rng.gen_bool(self.cfg.epsilon) {
            self.rng.gen_range(0..ACTIONS.len())
        } else {
            (0..ACTIONS.len())
                .max_by(|&a, &b| {
                    self.q_sum(&features, a)
                        .partial_cmp(&self.q_sum(&features, b))
                        .expect("finite Q values")
                })
                .expect("non-empty action set")
        };
        let delta = ACTIONS[action];
        if delta == 0 {
            self.push_eq(EqEntry { line: 0, features, action, resolved: false, valid: true });
            return;
        }
        let target = line as i64 + delta;
        let same_page = target >= 0 && (target as u64) / LINES_PER_PAGE == line / LINES_PER_PAGE;
        if !same_page {
            // Out-of-page action: treated as no-prefetch this time.
            return;
        }
        out.push(PrefetchRequest::new(LineAddr(target as u64), CacheLevel::L1D));
        self.push_eq(EqEntry {
            line: target as u64,
            features,
            action,
            resolved: false,
            valid: true,
        });
    }

    fn on_evict(&mut self, _info: &EvictInfo) {}

    fn on_feedback(&mut self, line: LineAddr, kind: FeedbackKind) {
        let Some(i) = self
            .eq
            .iter()
            .position(|e| e.valid && !e.resolved && e.line == line.0)
        else {
            return;
        };
        let (features, action) = (self.eq[i].features, self.eq[i].action);
        self.eq[i].resolved = true;
        let reward = match kind {
            FeedbackKind::Useful => self.cfg.r_timely,
            FeedbackKind::Useless => self.cfg.r_inaccurate,
            FeedbackKind::Dropped => return,
        };
        self.update(&features, action, reward);
    }

    /// QVStore (2 planes × entries × 16 actions × 5-bit quantized Q in
    /// hardware) + EQ ≈ 25.5KB class (Table V).
    fn storage_bits(&self) -> u64 {
        let q = (PLANES * self.cfg.table_entries * ACTIONS.len()) as u64 * 5;
        let eq = self.cfg.eq_entries as u64 * (32 + 4 + 2);
        q + eq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_types::{Addr, MemAccess, Pc};

    fn access(pc: u64, addr: u64) -> AccessInfo {
        AccessInfo {
            access: MemAccess::load(Pc(pc), Addr(addr)),
            hit: false,
            cycle: 0,
            pq_free: 8,
        }
    }

    #[test]
    fn at_most_one_prefetch_per_prediction() {
        let mut py = Pythia::default();
        let mut out = Vec::new();
        for i in 0..500u64 {
            out.clear();
            py.on_access(&access(0x400, i * 64), &mut out);
            assert!(out.len() <= 1, "Pythia issues one prefetch per prediction");
        }
    }

    #[test]
    fn learns_next_line_on_stream_with_rewards() {
        let mut py = Pythia::default();
        let mut out = Vec::new();
        // Stream; reward whatever it prefetches that matches next lines.
        let mut hits = 0;
        for round in 0..40u64 {
            for i in 0..64u64 {
                out.clear();
                let line = (round * 64 + i) % (1 << 20);
                py.on_access(&access(0x400, line * 4096 / 64 * 64), &mut out);
                for r in &out {
                    // Next-ish lines get positive feedback.
                    let d = r.line.0 as i64 - line as i64;
                    let _ = d;
                    py.on_feedback(r.line, FeedbackKind::Useful);
                }
            }
        }
        // After training, the greedy action should usually prefetch.
        for i in 0..64u64 {
            out.clear();
            py.on_access(&access(0x400, 777 * 4096 + i * 64), &mut out);
            hits += out.len();
        }
        assert!(hits > 32, "trained Pythia should prefetch on most accesses: {hits}");
    }

    #[test]
    fn negative_feedback_suppresses_prefetching() {
        let mut py = Pythia::new(PythiaConfig { epsilon: 0.0, ..PythiaConfig::default() });
        let mut out = Vec::new();
        // Punish every prefetch long enough and no-prefetch wins.
        for i in 0..4000u64 {
            out.clear();
            py.on_access(&access(0x400, (i % 64) * 64 * 17 % (1 << 18) * 64), &mut out);
            for r in out.clone() {
                py.on_feedback(r.line, FeedbackKind::Useless);
            }
        }
        let mut issued = 0;
        for i in 0..200u64 {
            out.clear();
            py.on_access(&access(0x400, (i % 64) * 64 * 17 % (1 << 18) * 64), &mut out);
            issued += out.len();
        }
        assert!(issued < 100, "Pythia should mostly abstain after punishment: {issued}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut py = Pythia::default();
            let mut all = Vec::new();
            let mut out = Vec::new();
            for i in 0..300u64 {
                out.clear();
                py.on_access(&access(0x400, i * 64), &mut out);
                all.extend(out.iter().map(|r| r.line.0));
            }
            all
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn storage_in_table_v_class() {
        let kib = Pythia::default().storage_bits() / 8 / 1024;
        assert!((20..64).contains(&kib), "Pythia ≈ 25.5KB class, got {kib}");
    }
}
