//! # pmp-snapshot
//!
//! Crash-safe persistence for learned prefetcher state.
//!
//! A long sweep trains prefetchers for minutes; a crash (or a deliberate
//! stop) should not discard that learning. This crate owns the *wire
//! container* around [`StateImage`] — the in-memory form every
//! [`Prefetcher::save_state`] produces — and the file IO discipline
//! around it:
//!
//! * **Versioned, checksummed format.** Magic + format version +
//!   prefetcher kind tag + config fingerprint + length-prefixed named
//!   sections, each with its own CRC-32, plus a whole-file CRC-32
//!   trailer. Any truncation or bit flip anywhere in the file fails a
//!   checksum or a bounds check and surfaces as a typed
//!   [`SnapshotError`] — never a panic.
//! * **Crash-safe writes.** [`write_snapshot`] writes to a sibling
//!   `.tmp` file, flushes, **reads the temp file back and verifies it
//!   byte-for-byte** (catching torn writes that report success), syncs,
//!   and only then atomically renames onto the final path. An
//!   interrupted write can never leave a half-written snapshot at the
//!   final path.
//! * **Paranoid restores.** [`read_snapshot`] bounds every allocation,
//!   verifies both checksum layers, and [`restore_prefetcher`] checks
//!   the kind tag before handing the image to the prefetcher's own
//!   validating `load_state`.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use pmp_prefetch::Prefetcher;
use pmp_types::{SnapshotError, StateImage, SNAPSHOT_VERSION};
use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

pub use pmp_types::{StateSection, SNAPSHOT_VERSION as FORMAT_VERSION};

/// The four magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"PMPS";

/// Hard cap on accepted snapshot size: a hostile length field must not
/// be able to drive an unbounded allocation.
pub const MAX_SNAPSHOT_BYTES: u64 = 64 * 1024 * 1024;

/// Cap on the section count a container may declare.
const MAX_SECTIONS: u32 = 1024;
/// Cap on kind-tag and section-name lengths.
const MAX_NAME_LEN: u16 = 255;

const CTX: &str = "snapshot container";

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the same
/// checksum gzip/PNG use, implemented here because the workspace takes
/// no dependencies.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= 0xedb8_8320;
            }
        }
    }
    !crc
}

/// Serialize a [`StateImage`] into the versioned, checksummed wire
/// form.
///
/// Layout (all integers little-endian):
///
/// ```text
/// magic "PMPS" | version u16 | kind_len u16 | kind bytes
/// | config_fingerprint u64 | section_count u32
/// | per section: name_len u16 | name bytes
///               | payload_len u32 | payload bytes | crc32(payload) u32
/// | crc32(everything above) u32
/// ```
pub fn encode_image(image: &StateImage) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&SNAPSHOT_MAGIC);
    buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    let kind = image.kind.as_bytes();
    debug_assert!(kind.len() <= usize::from(MAX_NAME_LEN), "kind tag too long");
    buf.extend_from_slice(&(kind.len() as u16).to_le_bytes());
    buf.extend_from_slice(kind);
    buf.extend_from_slice(&image.config_fingerprint.to_le_bytes());
    buf.extend_from_slice(&(image.sections.len() as u32).to_le_bytes());
    for s in &image.sections {
        let name = s.name.as_bytes();
        debug_assert!(name.len() <= usize::from(MAX_NAME_LEN), "section name too long");
        buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
        buf.extend_from_slice(name);
        buf.extend_from_slice(&(s.bytes.len() as u32).to_le_bytes());
        buf.extend_from_slice(&s.bytes);
        buf.extend_from_slice(&crc32(&s.bytes).to_le_bytes());
    }
    let file_crc = crc32(&buf);
    buf.extend_from_slice(&file_crc.to_le_bytes());
    buf
}

fn take_str(
    r: &mut pmp_types::ByteReader<'_>,
    what: &str,
) -> Result<String, SnapshotError> {
    let len = r.take_u16()?;
    if len > MAX_NAME_LEN {
        return Err(SnapshotError::corrupt(CTX, format!("{what} length {len} over the cap")));
    }
    let bytes = r.take_bytes(usize::from(len))?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| SnapshotError::corrupt(CTX, format!("{what} is not UTF-8")))
}

/// Parse and validate the wire form back into a [`StateImage`].
///
/// Validation order: magic, format version, whole-file checksum, then
/// bounds-checked structure with a per-section checksum each. Every
/// possible truncation and bit flip yields a typed error.
///
/// # Errors
///
/// [`SnapshotError::Corrupt`] for any malformed byte;
/// [`SnapshotError::VersionMismatch`] for a foreign format version.
pub fn decode_image(bytes: &[u8]) -> Result<StateImage, SnapshotError> {
    let mut hdr = pmp_types::ByteReader::new(bytes, CTX);
    let magic = hdr.take_bytes(4)?;
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::corrupt(CTX, format!("bad magic {magic:02x?}")));
    }
    let version = hdr.take_u16()?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::VersionMismatch { found: version, expected: SNAPSHOT_VERSION });
    }
    if bytes.len() < 6 + 4 {
        return Err(SnapshotError::corrupt(CTX, "truncated before the file checksum"));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let computed = crc32(body);
    if stored != computed {
        return Err(SnapshotError::corrupt(
            CTX,
            format!("file checksum {stored:08x} != computed {computed:08x}"),
        ));
    }
    let mut r = pmp_types::ByteReader::new(&body[6..], CTX);
    let kind = take_str(&mut r, "kind tag")?;
    let config_fingerprint = r.take_u64()?;
    let section_count = r.take_u32()?;
    if section_count > MAX_SECTIONS {
        return Err(SnapshotError::corrupt(
            CTX,
            format!("section count {section_count} over the cap {MAX_SECTIONS}"),
        ));
    }
    let mut image = StateImage::new(kind, config_fingerprint);
    for _ in 0..section_count {
        let name = take_str(&mut r, "section name")?;
        let payload_len = r.take_u32()? as usize;
        if payload_len > r.remaining() {
            return Err(SnapshotError::corrupt(
                CTX,
                format!("section {name} declares {payload_len} bytes, only {} remain", r.remaining()),
            ));
        }
        let payload = r.take_bytes(payload_len)?.to_vec();
        let stored = r.take_u32()?;
        let computed = crc32(&payload);
        if stored != computed {
            return Err(SnapshotError::corrupt(
                format!("section {name}"),
                format!("checksum {stored:08x} != computed {computed:08x}"),
            ));
        }
        image.push_section(name, payload);
    }
    r.finish()?;
    Ok(image)
}

/// Read and validate a snapshot from an arbitrary reader, with the
/// allocation bounded by [`MAX_SNAPSHOT_BYTES`].
///
/// # Errors
///
/// [`SnapshotError::Io`] on read failure, otherwise anything
/// [`decode_image`] reports.
pub fn read_snapshot_from<R: Read>(reader: R) -> Result<StateImage, SnapshotError> {
    let mut buf = Vec::new();
    let n = reader
        .take(MAX_SNAPSHOT_BYTES + 1)
        .read_to_end(&mut buf)
        .map_err(|e| SnapshotError::io("read snapshot", e))?;
    if n as u64 > MAX_SNAPSHOT_BYTES {
        return Err(SnapshotError::corrupt(
            CTX,
            format!("snapshot exceeds the {MAX_SNAPSHOT_BYTES}-byte cap"),
        ));
    }
    decode_image(&buf)
}

/// Read and validate the snapshot file at `path`.
///
/// # Errors
///
/// [`SnapshotError::Io`] when the file cannot be opened, otherwise
/// anything [`read_snapshot_from`] reports.
pub fn read_snapshot(path: &Path) -> Result<StateImage, SnapshotError> {
    let file = File::open(path)
        .map_err(|e| SnapshotError::io(format!("open snapshot {}", path.display()), e))?;
    read_snapshot_from(file)
}

/// The sibling temp path a crash-safe write stages through.
fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Crash-safe snapshot write: encode, write to `<path>.tmp`, flush,
/// **read the temp file back and compare byte-for-byte** (a torn write
/// that claimed success is caught here), sync, then atomically rename
/// onto `path`. On any failure the temp file is removed and the final
/// path is left untouched — it either holds the complete new snapshot
/// or whatever was there before, never a torn file.
///
/// # Errors
///
/// [`SnapshotError::Io`] for filesystem failures;
/// [`SnapshotError::Corrupt`] when the temp file reads back different
/// from what was written.
pub fn write_snapshot(path: &Path, image: &StateImage) -> Result<(), SnapshotError> {
    write_snapshot_wrapped(path, image, |f| f)
}

/// [`write_snapshot`] with a hook wrapping the temp-file writer —
/// the fault-injection seam robustness tests drive `FaultyWriter`
/// through. Production callers use [`write_snapshot`].
///
/// # Errors
///
/// As [`write_snapshot`].
pub fn write_snapshot_wrapped<W, F>(
    path: &Path,
    image: &StateImage,
    wrap: F,
) -> Result<(), SnapshotError>
where
    W: Write,
    F: FnOnce(File) -> W,
{
    let bytes = encode_image(image);
    let tmp = tmp_path(path);
    let result = (|| {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| SnapshotError::io("create snapshot directory", e))?;
            }
        }
        let file = File::create(&tmp)
            .map_err(|e| SnapshotError::io(format!("create temp snapshot {}", tmp.display()), e))?;
        let mut w = wrap(file);
        w.write_all(&bytes).map_err(|e| SnapshotError::io("write temp snapshot", e))?;
        w.flush().map_err(|e| SnapshotError::io("flush temp snapshot", e))?;
        drop(w);
        let written = std::fs::read(&tmp)
            .map_err(|e| SnapshotError::io("read back temp snapshot", e))?;
        if written != bytes {
            return Err(SnapshotError::corrupt(
                CTX,
                format!(
                    "temp snapshot read back {} bytes, wrote {} — torn write",
                    written.len(),
                    bytes.len()
                ),
            ));
        }
        File::open(&tmp)
            .and_then(|f| f.sync_all())
            .map_err(|e| SnapshotError::io("sync temp snapshot", e))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| SnapshotError::io(format!("rename snapshot into {}", path.display()), e))?;
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Snapshot a prefetcher's learned state to `path`, crash-safely.
///
/// # Errors
///
/// [`SnapshotError::Unsupported`] when the prefetcher has no state
/// walk; otherwise anything [`write_snapshot`] reports.
pub fn save_prefetcher(p: &dyn Prefetcher, path: &Path) -> Result<(), SnapshotError> {
    write_snapshot(path, &p.save_state()?)
}

/// Restore a prefetcher's learned state from the snapshot at `path`,
/// validating the kind tag before the prefetcher's own `load_state`
/// checks the config fingerprint and every decoded field.
///
/// # Errors
///
/// [`SnapshotError::KindMismatch`] when the file was taken from a
/// different prefetcher kind; otherwise anything [`read_snapshot`] or
/// the prefetcher's `load_state` reports.
pub fn restore_prefetcher(p: &mut dyn Prefetcher, path: &Path) -> Result<(), SnapshotError> {
    let image = read_snapshot(path)?;
    if image.kind != p.name() {
        return Err(SnapshotError::KindMismatch {
            found: image.kind,
            expected: p.name().to_string(),
        });
    }
    p.load_state(&image)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_traces::faults::{Fault, FaultyWriter};

    fn sample_image() -> StateImage {
        let mut img = StateImage::new("pmp", 0xDEAD_BEEF_CAFE_F00D);
        img.push_section("alpha", vec![1, 2, 3, 4, 5]);
        img.push_section("beta", (0..200u32).map(|i| (i % 251) as u8).collect());
        img.push_section("empty", Vec::new());
        img
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pmp-snapshot-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn crc32_known_answer() {
        // The classic CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn wire_round_trip_is_lossless() {
        let img = sample_image();
        let bytes = encode_image(&img);
        let back = decode_image(&bytes).expect("decode");
        assert_eq!(back, img);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = encode_image(&sample_image());
        for cut in 0..bytes.len() {
            let err = decode_image(&bytes[..cut]).expect_err("truncated snapshot must fail");
            assert!(
                matches!(err, SnapshotError::Corrupt { .. } | SnapshotError::VersionMismatch { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let bytes = encode_image(&sample_image());
        for at in 0..bytes.len() {
            let mut dirty = bytes.clone();
            dirty[at] ^= 0x01;
            assert!(decode_image(&dirty).is_err(), "flip at byte {at} must be caught");
        }
    }

    #[test]
    fn foreign_version_is_a_version_mismatch() {
        let mut bytes = encode_image(&sample_image());
        bytes[4] = 0x7f; // version low byte
        let err = decode_image(&bytes).expect_err("foreign version");
        assert_eq!(err.kind_tag(), "version-mismatch");
    }

    #[test]
    fn hostile_section_length_is_bounded() {
        // Rewrite section alpha's payload length to u32::MAX and fix the
        // file CRC so only the bounds check can catch it.
        let img = sample_image();
        let mut bytes = encode_image(&img);
        // Offset: magic 4 + version 2 + kind_len 2 + "pmp" 3 + fp 8 +
        // count 4 + name_len 2 + "alpha" 5 = 30.
        bytes[30..34].copy_from_slice(&u32::MAX.to_le_bytes());
        let len = bytes.len();
        let crc = crc32(&bytes[..len - 4]);
        bytes[len - 4..].copy_from_slice(&crc.to_le_bytes());
        let err = decode_image(&bytes).expect_err("hostile length");
        assert_eq!(err.kind_tag(), "corrupt");
        assert!(err.to_string().contains("alpha"), "{err}");
    }

    #[test]
    fn file_round_trip_and_no_temp_left_behind() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("state.pmps");
        let img = sample_image();
        write_snapshot(&path, &img).expect("write");
        assert_eq!(read_snapshot(&path).expect("read"), img);
        assert!(
            !tmp_path(&path).exists(),
            "successful write must clean up its temp file"
        );
        // Overwrite with different content: the rename replaces whole.
        let mut img2 = img.clone();
        img2.push_section("gamma", vec![9]);
        write_snapshot(&path, &img2).expect("overwrite");
        assert_eq!(read_snapshot(&path).expect("read"), img2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_never_reaches_the_final_path() {
        let dir = tmp_dir("torn");
        let path = dir.join("state.pmps");
        let img = sample_image();
        // A silently-truncating writer claims success; the read-back
        // verify must catch it and leave no file at the final path.
        let err = write_snapshot_wrapped(&path, &img, |f| {
            FaultyWriter::new(f, vec![Fault::TruncateAt(40)])
        })
        .expect_err("torn write must be detected");
        assert_eq!(err.kind_tag(), "corrupt");
        assert!(!path.exists(), "final path must stay untouched");
        assert!(!tmp_path(&path).exists(), "failed write must remove its temp file");

        // With a good snapshot already in place, a later torn write
        // must leave the old snapshot intact.
        write_snapshot(&path, &img).expect("good write");
        let err = write_snapshot_wrapped(&path, &img, |f| {
            FaultyWriter::new(f, vec![Fault::TruncateAt(10)])
        })
        .expect_err("torn overwrite must be detected");
        assert_eq!(err.kind_tag(), "corrupt");
        assert_eq!(read_snapshot(&path).expect("old snapshot survives"), img);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_error_mid_write_surfaces_as_io() {
        let dir = tmp_dir("ioerr");
        let path = dir.join("state.pmps");
        let err = write_snapshot_wrapped(&path, &sample_image(), |f| {
            FaultyWriter::new(
                f,
                vec![Fault::ErrorAt { at: 16, kind: std::io::ErrorKind::StorageFull }],
            )
        })
        .expect_err("disk full must surface");
        assert_eq!(err.kind_tag(), "io");
        assert!(!path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prefetcher_save_restore_round_trips() {
        use pmp_core::{Pmp, PmpConfig};
        let dir = tmp_dir("pmp");
        let path = dir.join("pmp.pmps");
        let trained = Pmp::new(PmpConfig::default());
        save_prefetcher(&trained, &path).expect("save");
        let mut fresh = Pmp::new(PmpConfig::default());
        restore_prefetcher(&mut fresh, &path).expect("restore");
        // Kind guard: restoring the PMP file into DSPatch fails early.
        let mut other = pmp_baselines::DsPatch::default();
        let err = restore_prefetcher(&mut other, &path).expect_err("kind");
        assert_eq!(err.kind_tag(), "kind-mismatch");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unsupported_prefetcher_declines_cleanly() {
        let dir = tmp_dir("unsupported");
        let path = dir.join("noop.pmps");
        let p = pmp_prefetch::NoPrefetch;
        let err = save_prefetcher(&p, &path).expect_err("no state walk");
        assert_eq!(err.kind_tag(), "unsupported");
        assert!(!path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
